//! R-MAT graph generation (the GTgraph substitute).
//!
//! The paper generates inputs for Graph Coloring and Graph Connectivity with
//! GTgraph, which implements the R-MAT recursive-matrix model (Chakrabarti,
//! Zhan & Faloutsos, SDM 2004). This module reproduces the model with
//! GTgraph's default partition probabilities `(a, b, c, d) =
//! (0.45, 0.15, 0.15, 0.25)`, de-duplicates edges, symmetrizes the graph and
//! emits CSR adjacency.

use scord_core::SplitMix64;

/// An undirected graph in CSR form.
///
/// ```
/// use scor_suite::graphgen::rmat;
/// let g = rmat(64, 128, 42);
/// assert_eq!(g.num_vertices(), 64);
/// for v in 0..g.num_vertices() {
///     for &n in g.neighbors(v) {
///         assert!(g.neighbors(n as usize).contains(&(v as u32)), "symmetric");
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Offsets into `col_idx`, length `n + 1`.
    pub row_ptr: Vec<u32>,
    /// Concatenated adjacency lists.
    pub col_idx: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges stored (twice the undirected count).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// The neighbours of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize]
    }

    /// Maximum vertex degree.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.neighbors(v).len())
            .max()
            .unwrap_or(0)
    }

    /// Builds a CSR graph from an undirected edge list (vertices `0..n`).
    /// Self-loops and duplicates are dropped; each edge is stored in both
    /// directions.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            col_idx.extend_from_slice(list);
            row_ptr.push(col_idx.len() as u32);
        }
        CsrGraph { row_ptr, col_idx }
    }
}

/// Generates an undirected R-MAT graph with `n` vertices (rounded up to a
/// power of two internally) and about `m` undirected edges, deterministic in
/// `seed`.
#[must_use]
pub fn rmat(n: usize, m: usize, seed: u64) -> CsrGraph {
    // GTgraph default R-MAT parameters.
    const A: f64 = 0.45;
    const B: f64 = 0.15;
    const C: f64 = 0.15;
    let scale = usize::BITS - (n.max(2) - 1).leading_zeros();
    let side = 1usize << scale;
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut x, mut y) = (0usize, 0usize);
        let mut span = side / 2;
        while span > 0 {
            let r: f64 = rng.next_f64();
            if r < A {
                // top-left: nothing to add
            } else if r < A + B {
                y += span;
            } else if r < A + B + C {
                x += span;
            } else {
                x += span;
                y += span;
            }
            span /= 2;
        }
        let u = (x % n) as u32;
        let v = (y % n) as u32;
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges)
}

/// CPU reference: connected-component label for every vertex (the minimum
/// vertex id in its component), via BFS.
#[must_use]
pub fn reference_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        let mut stack = vec![start];
        label[start] = start as u32;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = start as u32;
                    stack.push(w as usize);
                }
            }
        }
    }
    label
}

/// Checks that `colors` is a proper vertex colouring of `g` (no adjacent
/// pair shares a colour and every vertex is coloured non-zero).
#[must_use]
pub fn is_proper_coloring(g: &CsrGraph, colors: &[u32]) -> bool {
    if colors.len() != g.num_vertices() {
        return false;
    }
    for v in 0..g.num_vertices() {
        if colors[v] == 0 {
            return false;
        }
        for &w in g.neighbors(v) {
            if w as usize != v && colors[w as usize] == colors[v] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_in_seed() {
        let a = rmat(128, 256, 7);
        let b = rmat(128, 256, 7);
        let c = rmat(128, 256, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_symmetric_without_self_loops() {
        let g = rmat(100, 300, 3);
        for v in 0..g.num_vertices() {
            for &w in g.neighbors(v) {
                assert_ne!(w as usize, v, "no self loops");
                assert!(
                    g.neighbors(w as usize).contains(&(v as u32)),
                    "edge ({v},{w}) must exist in both directions"
                );
            }
        }
    }

    #[test]
    fn rmat_is_skewed() {
        // R-MAT's whole point: a heavy-tailed degree distribution driving
        // load imbalance (and therefore work stealing).
        let g = rmat(256, 2048, 1);
        let avg = g.num_edges() / g.num_vertices();
        assert!(
            g.max_degree() > 3 * avg,
            "max degree {} should dominate average {}",
            g.max_degree(),
            avg
        );
    }

    #[test]
    fn csr_from_edges_dedupes() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn reference_components_finds_islands() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let l = reference_components(&g);
        assert_eq!(l, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn proper_coloring_checker() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(is_proper_coloring(&g, &[1, 2, 1]));
        assert!(!is_proper_coloring(&g, &[1, 1, 2]), "adjacent same colour");
        assert!(!is_proper_coloring(&g, &[1, 2, 0]), "uncoloured vertex");
        assert!(!is_proper_coloring(&g, &[1, 2]), "wrong length");
    }
}
