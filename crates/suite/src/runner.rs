//! The benchmark abstraction shared by applications and experiments.

use scord_sim::{Gpu, SimError, SimStats};

/// The result of running one benchmark on a GPU.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Counters aggregated over every kernel launch of the run.
    pub stats: SimStats,
    /// Number of kernel launches performed.
    pub launches: u32,
    /// `Some(true)` when the output matched the CPU reference,
    /// `Some(false)` on a mismatch, `None` when the configuration injects
    /// races and output validation is skipped (a real race may legitimately
    /// corrupt results).
    pub output_valid: Option<bool>,
}

impl AppRun {
    /// Creates a run summary.
    #[must_use]
    pub fn new(stats: SimStats, launches: u32, output_valid: Option<bool>) -> Self {
        AppRun {
            stats,
            launches,
            output_valid,
        }
    }
}

/// A ScoR benchmark: owns its workload generation, kernel(s), launch
/// geometry and validation.
///
/// Benchmarks are `Send + Sync`: the experiment harness shares one boxed
/// benchmark across its worker threads, each running it on a private `Gpu`.
pub trait Benchmark: Send + Sync {
    /// Short name (the paper's abbreviation: "MM", "RED", ...).
    fn name(&self) -> &'static str;

    /// One-line description for Table II.
    fn description(&self) -> &'static str;

    /// Unique races this configuration is expected to produce (0 for the
    /// correctly-synchronized default).
    fn expected_races(&self) -> usize;

    /// Allocates inputs, launches the kernel(s) on `gpu`, validates output.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the launches.
    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError>;
}

/// Runs a benchmark on a fresh flow of launches, returning its summary.
///
/// Thin convenience wrapper so callers don't need the trait in scope.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn run_benchmark(bench: &dyn Benchmark, gpu: &mut Gpu) -> Result<AppRun, SimError> {
    bench.run(gpu)
}
