//! Shared kernel idioms used by several ScoR applications: grid-wide
//! synchronization via per-block generation flags, leader election, and
//! delay loops.

use scord_isa::{KernelBuilder, Operand, Reg, Scope, SpecialReg};

/// Scopes used by the generation-flag grid synchronization — the
/// race-injection surface several applications share.
///
/// The correct configuration publishes with a **device** fence and a
/// **device** `atomicExch`, and polls with **device** atomic reads. Using
/// block scope for the fence produces a scoped-fence race on the data the
/// sync was meant to publish; block scope on the exchange produces a
/// scoped-atomic race on the flag itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSyncScopes {
    /// Fence ordering the round's data before the flag is raised.
    pub publish_fence: Scope,
    /// Scope of the `atomicExch` raising the flag.
    pub exch: Scope,
    /// Scope of the atomic polls on other blocks' flags.
    pub poll: Scope,
}

impl GridSyncScopes {
    /// The correct, device-scoped configuration.
    #[must_use]
    pub fn device() -> Self {
        GridSyncScopes {
            publish_fence: Scope::Device,
            exch: Scope::Device,
            poll: Scope::Device,
        }
    }
}

impl Default for GridSyncScopes {
    fn default() -> Self {
        GridSyncScopes::device()
    }
}

/// Emits a grid-wide synchronization round.
///
/// Requires every block of the grid to be *resident* (grid ≤ SM count ×
/// blocks per SM), like any persistent-kernel sync. All threads of the block
/// must execute this converged. `round` must be ≥ 1 and strictly increasing
/// across calls; `gen_base` points at one word per block, zero-initialized.
///
/// Shape (the CUDA idiom):
///
/// ```text
/// __syncthreads();
/// if (tid == 0) {
///     __threadfence();                       // publish_fence
///     atomicExch(&gen[blockIdx.x], round);   // exch scope
///     for (b = 0; b < gridDim.x; ++b)
///         while (atomicAdd(&gen[b], 0) < round);  // poll scope
/// }
/// __syncthreads();
/// ```
pub fn grid_sync(
    k: &mut KernelBuilder,
    gen_base: Reg,
    round: impl Into<Operand>,
    scopes: GridSyncScopes,
) {
    let round = round.into();
    k.bar();
    let tid = k.special(SpecialReg::Tid);
    let leader = k.set_eq(tid, 0u32);
    k.if_then(leader, |k| {
        k.fence(scopes.publish_fence);
        let ctaid = k.special(SpecialReg::Ctaid);
        let own = k.index_addr(gen_base, ctaid, 4);
        k.atom_exch_noret(own, 0, round, scopes.exch);
        let nblocks = k.special(SpecialReg::Nctaid);
        k.for_range(0u32, nblocks, 1u32, |k, b| {
            let flag = k.index_addr(gen_base, b, 4);
            // while (atomicAdd(&gen[b], 0) < round) ;
            k.while_loop(
                |k| {
                    let v = k.atom_add(flag, 0, 0u32, scopes.poll);
                    k.set_lt(v, round)
                },
                |_| {},
            );
        });
    });
    k.bar();
}

/// Emits a neighbourhood synchronization: like [`grid_sync`] but the leader
/// only waits for blocks `ctaid - 1` and `ctaid + 1` (clamped) — sufficient
/// for stencils such as Rule 110.
pub fn neighbor_sync(
    k: &mut KernelBuilder,
    gen_base: Reg,
    round: impl Into<Operand>,
    scopes: GridSyncScopes,
) {
    let round = round.into();
    k.bar();
    let tid = k.special(SpecialReg::Tid);
    let leader = k.set_eq(tid, 0u32);
    k.if_then(leader, |k| {
        k.fence(scopes.publish_fence);
        let ctaid = k.special(SpecialReg::Ctaid);
        let own = k.index_addr(gen_base, ctaid, 4);
        k.atom_exch_noret(own, 0, round, scopes.exch);
        let nblocks = k.special(SpecialReg::Nctaid);
        // lo = max(ctaid, 1) - 1 ; hi = min(ctaid + 2, nblocks)
        let c1 = k.alu(scord_isa::AluOp::Max, ctaid, 1u32);
        let lo = k.sub(c1, 1u32);
        let c2 = k.add(ctaid, 2u32);
        let hi = k.min(c2, nblocks);
        k.for_range(lo, hi, 1u32, |k, b| {
            let flag = k.index_addr(gen_base, b, 4);
            k.while_loop(
                |k| {
                    let v = k.atom_add(flag, 0, 0u32, scopes.poll);
                    k.set_lt(v, round)
                },
                |_| {},
            );
        });
    });
    k.bar();
}

/// Emits a compute-only delay of roughly `iters` scheduler slots — the
/// microbenchmarks use it to order a late reader after an early writer
/// without introducing synchronization (the paper's two-thread tests do the
/// same).
pub fn delay(k: &mut KernelBuilder, iters: u32) {
    let acc = k.mov(1u32);
    k.for_range(0u32, iters, 1u32, |k, i| {
        k.alu_into(acc, scord_isa::AluOp::Xor, acc, i);
    });
}

/// Returns a register holding 1 exactly for (block `ctaid`, thread `tid`).
pub fn is_actor(k: &mut KernelBuilder, ctaid: u32, tid: u32) -> Reg {
    let t = k.special(SpecialReg::Tid);
    let c = k.special(SpecialReg::Ctaid);
    let te = k.set_eq(t, tid);
    let ce = k.set_eq(c, ctaid);
    k.logical_and(te, ce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, Gpu, GpuConfig};

    /// Full-machine check: a ping-pong over grid_sync with data written by
    /// alternating blocks is functionally correct and race-free.
    #[test]
    fn grid_sync_orders_cross_block_rounds() {
        // Two blocks increment a shared word in alternating rounds.
        let mut k = KernelBuilder::new("pingpong", 2);
        let gen = k.ld_param(0);
        let data = k.ld_param(1);
        let tid = k.special(SpecialReg::Tid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let leader = k.set_eq(tid, 0u32);
        let round = k.mov(1u32);
        k.for_range(0u32, 6u32, 1u32, |k, i| {
            // Block (i % 2) appends: data[i] = data[i-1] + 1 (via volatile).
            let turn = k.rem(i, 2u32);
            let my_turn = k.set_eq(turn, ctaid);
            let write = k.logical_and(my_turn, leader);
            k.if_then(write, |k| {
                let prev = k.ld_global_strong(data, 0);
                let next = k.add(prev, 1u32);
                k.st_global_strong(data, 0, next);
            });
            grid_sync(k, gen, round, GridSyncScopes::device());
            k.alu_into(round, scord_isa::AluOp::Add, round, 1u32);
        });
        let prog = k.finish().unwrap();

        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let gen = gpu.mem_mut().alloc_words(2);
        let data = gpu.mem_mut().alloc_words(1);
        gpu.launch(&prog, 2, 64, &[gen.addr(), data.addr()])
            .unwrap();
        assert_eq!(gpu.mem().read_word(data.word_addr(0)), 6);
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "device-scoped grid sync is race-free: {:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn block_scoped_publish_fence_is_caught() {
        let mut k = KernelBuilder::new("pingpong-racey", 2);
        let gen = k.ld_param(0);
        let data = k.ld_param(1);
        let tid = k.special(SpecialReg::Tid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let leader = k.set_eq(tid, 0u32);
        let round = k.mov(1u32);
        let bad = GridSyncScopes {
            publish_fence: Scope::Block,
            ..GridSyncScopes::device()
        };
        k.for_range(0u32, 4u32, 1u32, |k, i| {
            let turn = k.rem(i, 2u32);
            let my_turn = k.set_eq(turn, ctaid);
            let write = k.logical_and(my_turn, leader);
            k.if_then(write, |k| {
                let prev = k.ld_global_strong(data, 0);
                let next = k.add(prev, 1u32);
                k.st_global_strong(data, 0, next);
            });
            grid_sync(k, gen, round, bad);
            k.alu_into(round, scord_isa::AluOp::Add, round, 1u32);
        });
        let prog = k.finish().unwrap();

        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let gen = gpu.mem_mut().alloc_words(2);
        let data = gpu.mem_mut().alloc_words(1);
        gpu.launch(&prog, 2, 64, &[gen.addr(), data.addr()])
            .unwrap();
        assert!(
            gpu.races().unwrap().unique_count() >= 1,
            "block-scoped publish fence must be reported"
        );
    }

    #[test]
    fn delay_emits_bounded_loop() {
        let mut k = KernelBuilder::new("d", 0);
        delay(&mut k, 100);
        let p = k.finish().unwrap();
        assert!(p.len() < 12, "delay is a compact loop");
    }
}
