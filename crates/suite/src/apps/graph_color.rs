//! Graph Coloring (GCOL, Table II).
//!
//! Round-based Jones–Plassmann-style colouring: in each round every vertex
//! whose higher-id neighbours are all coloured picks the smallest colour not
//! used by its neighbours. Vertices are distributed among blocks and
//! processed through the paper's **work-stealing** scheme (Figure 3): a
//! block's leader takes batches from its own partition's `nextHead` with an
//! atomic add, and when the partition runs dry it scans other partitions and
//! steals a batch with a device-scoped atomic. Rounds are separated by a
//! generation-flag grid synchronization, with each warp publishing its
//! colour stores with a device fence first.
//!
//! Race knobs cover every scoped operation; the canonical racey
//! configuration yields the paper's 6 unique races (see
//! [`GraphColoring::racey`]).

use scord_isa::{AluOp, KernelBuilder, Program, Reg, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::common::{grid_sync, GridSyncScopes};
use crate::graphgen::{is_proper_coloring, rmat, CsrGraph};
use crate::{AppRun, Benchmark};

/// Race-injection knobs for GCOL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphColoringRaces {
    /// `atomicAdd_block` on the block's own `nextHead` (Figure 3b's bug).
    pub block_scope_own_head: bool,
    /// Block scope on the *stealing* `atomicAdd`.
    pub block_scope_steal: bool,
    /// Scan other partitions' heads with a weak load instead of an atomic
    /// read.
    pub weak_head_scan: bool,
    /// Publish colour stores with a block-scope fence.
    pub block_scope_color_fence: bool,
    /// Raise the generation flag with a block-scoped `atomicExch`.
    pub block_scope_generation_flag: bool,
}

/// The graph-colouring benchmark.
#[derive(Debug, Clone)]
pub struct GraphColoring {
    /// Vertices (paper: 30K; scaled default: 1024).
    pub vertices: u32,
    /// Undirected edges to generate (paper: 50K; scaled default: 2048).
    pub edges: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Grid blocks (all must be resident for the grid sync).
    pub blocks: u32,
    /// Race knobs.
    pub races: GraphColoringRaces,
    /// Graph seed.
    pub seed: u64,
}

impl Default for GraphColoring {
    fn default() -> Self {
        GraphColoring {
            vertices: 1024,
            edges: 2048,
            threads_per_block: 64,
            blocks: 8,
            races: GraphColoringRaces::default(),
            seed: 0x6c01,
        }
    }
}

impl GraphColoring {
    /// The canonical racey configuration (6 unique races; per-knob
    /// contributions are calibrated by the tests below).
    #[must_use]
    pub fn racey() -> Self {
        GraphColoring {
            races: GraphColoringRaces {
                block_scope_own_head: true,
                block_scope_steal: true,
                weak_head_scan: true,
                block_scope_color_fence: false,
                block_scope_generation_flag: false,
            },
            ..Self::default()
        }
    }

    /// CPU reference: the same round-based algorithm; returns the colours
    /// and the number of rounds needed (the GPU kernel runs exactly this
    /// many rounds).
    #[must_use]
    pub fn reference(&self, g: &CsrGraph) -> (Vec<u32>, u32) {
        let n = g.num_vertices();
        let mut colors = vec![0u32; n];
        let mut rounds = 0u32;
        while colors.contains(&0) {
            rounds += 1;
            assert!(rounds <= n as u32 + 1, "colouring must converge");
            let snapshot = colors.clone();
            for v in 0..n {
                if snapshot[v] != 0 {
                    continue;
                }
                let ready = g
                    .neighbors(v)
                    .iter()
                    .all(|&w| (w as usize) < v || snapshot[w as usize] != 0);
                if !ready {
                    continue;
                }
                let mut c = 1u32;
                loop {
                    if g.neighbors(v).iter().all(|&w| snapshot[w as usize] != c) {
                        break;
                    }
                    c += 1;
                }
                colors[v] = c;
            }
        }
        (colors, rounds)
    }

    #[allow(clippy::too_many_lines)]
    fn build_kernel(&self, rounds: u32) -> Program {
        let r = &self.races;
        let own_scope = if r.block_scope_own_head {
            Scope::Block
        } else {
            Scope::Device
        };
        let steal_scope = if r.block_scope_steal {
            Scope::Block
        } else {
            Scope::Device
        };
        let color_fence = if r.block_scope_color_fence {
            Scope::Block
        } else {
            Scope::Device
        };
        let weak_scan = r.weak_head_scan;
        let sync_scopes = GridSyncScopes {
            exch: if r.block_scope_generation_flag {
                Scope::Block
            } else {
                Scope::Device
            },
            ..GridSyncScopes::device()
        };

        // params: row_ptr, col_idx, colors_a, colors_b,
        //         next_head (rounds×blocks), pend, gen
        let mut k = KernelBuilder::new("gcol", 7);
        let row_ptr = k.ld_param(0);
        let col_idx = k.ld_param(1);
        let colors_a = k.ld_param(2);
        let colors_b = k.ld_param(3);
        let next_head = k.ld_param(4);
        let pend = k.ld_param(5);
        let gen = k.ld_param(6);
        let mailbox = k.alloc_shared(8); // [victim+1, batch start]

        let tid = k.special(SpecialReg::Tid);
        let ntid = k.special(SpecialReg::Ntid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let nblocks = k.special(SpecialReg::Nctaid);
        let leader = k.set_eq(tid, 0u32);
        let shbase = k.mov(mailbox);
        let round = k.mov(1u32);

        k.for_range(0u32, rounds, 1u32, |k, rr| {
            // Double buffer: read colours from prev, write them to next, so
            // same-round stores never conflict with same-round reads.
            let parity = k.rem(rr, 2u32);
            let even = k.set_eq(parity, 0u32);
            let prev = k.select(even, colors_a, colors_b);
            let next = k.select(even, colors_b, colors_a);
            let nh_base = k.mul(rr, nblocks); // this round's next_head row
            let exhausted = k.mov(0u32);
            k.while_loop(
                |k| k.set_eq(exhausted, 0u32),
                |k| {
                    // --- leader: getWork (Figure 3a) ---------------------
                    k.if_then(leader, |k| {
                        let victim = k.mov(0u32); // 0 = none, else block+1
                        let batch = k.mov(0u32);
                        // Own partition first.
                        let own_idx = k.add(nh_base, ctaid);
                        let own_nh = k.index_addr(next_head, own_idx, 4);
                        let curr = k.atom_add(own_nh, 0, ntid, own_scope);
                        let own_end_a = k.index_addr(pend, ctaid, 4);
                        let own_end = k.ld_global(own_end_a, 0);
                        let got = k.set_lt(curr, own_end);
                        k.if_else(
                            got,
                            |k| {
                                let c1 = k.add(ctaid, 1u32);
                                k.mov_into(victim, c1);
                                k.mov_into(batch, curr);
                            },
                            |k| {
                                // Steal: scan partitions for leftover work.
                                let vb = k.mov(0u32);
                                k.while_loop(
                                    |k| {
                                        let more = k.set_lt(vb, nblocks);
                                        let none = k.set_eq(victim, 0u32);
                                        k.logical_and(more, none)
                                    },
                                    |k| {
                                        let idx = k.add(nh_base, vb);
                                        let nh = k.index_addr(next_head, idx, 4);
                                        let head = if weak_scan {
                                            k.ld_global(nh, 0)
                                        } else {
                                            k.atom_read(nh, 0, Scope::Device)
                                        };
                                        let ea = k.index_addr(pend, vb, 4);
                                        let end = k.ld_global(ea, 0);
                                        let avail = k.set_lt(head, end);
                                        k.if_then(avail, |k| {
                                            let got2 = k.atom_add(nh, 0, ntid, steal_scope);
                                            let ok = k.set_lt(got2, end);
                                            k.if_then(ok, |k| {
                                                let v1 = k.add(vb, 1u32);
                                                k.mov_into(victim, v1);
                                                k.mov_into(batch, got2);
                                            });
                                        });
                                        k.alu_into(vb, AluOp::Add, vb, 1u32);
                                    },
                                );
                            },
                        );
                        k.st_shared(shbase, 0, victim);
                        k.st_shared(shbase, 4, batch);
                    });
                    k.bar();
                    let victim = k.ld_shared(shbase, 0);
                    let batch = k.ld_shared(shbase, 4);
                    k.bar();
                    let none = k.set_eq(victim, 0u32);
                    k.if_else(
                        none,
                        |k| k.mov_into(exhausted, 1u32),
                        |k| {
                            let vb = k.sub(victim, 1u32);
                            let v = k.add(batch, tid);
                            let ea = k.index_addr(pend, vb, 4);
                            let end = k.ld_global(ea, 0);
                            let below = k.set_lt(v, end);
                            k.if_then(below, |k| {
                                Self::emit_process_vertex(k, row_ptr, col_idx, prev, next, v);
                            });
                        },
                    );
                },
            );
            // Publish this round's colour stores, then synchronize.
            k.fence(color_fence);
            grid_sync(k, gen, round, sync_scopes);
            k.alu_into(round, AluOp::Add, round, 1u32);
        });
        k.finish().expect("gcol kernel is well-formed")
    }

    /// Process vertex `v`: read the previous round's colours, write this
    /// round's colour (or carry the old one forward) into `next`.
    fn emit_process_vertex(
        k: &mut KernelBuilder,
        row_ptr: Reg,
        col_idx: Reg,
        prev: Reg,
        next: Reg,
        v: Reg,
    ) {
        let pa = k.index_addr(prev, v, 4);
        let cv = k.ld_global_strong(pa, 0);
        let out = k.mov(cv);
        let uncolored = k.set_eq(cv, 0u32);
        k.if_then(uncolored, |k| {
            let ra = k.index_addr(row_ptr, v, 4);
            let lo = k.ld_global(ra, 0);
            let hi = k.ld_global(ra, 4);
            // ready = every neighbour w > v was coloured as of last round
            let ready = k.mov(1u32);
            k.for_range(lo, hi, 1u32, |k, j| {
                let wa = k.index_addr(col_idx, j, 4);
                let w = k.ld_global(wa, 0);
                let higher = k.alu(AluOp::SetGt, w, v);
                k.if_then(higher, |k| {
                    let nca = k.index_addr(prev, w, 4);
                    let cw = k.ld_global_strong(nca, 0);
                    let colored = k.set_ne(cw, 0u32);
                    k.alu_into(ready, AluOp::And, ready, colored);
                });
            });
            k.if_then(ready, |k| {
                // Smallest colour not used by any neighbour (last round).
                let c = k.mov(1u32);
                let settled = k.mov(0u32);
                k.while_loop(
                    |k| k.set_eq(settled, 0u32),
                    |k| {
                        let conflict = k.mov(0u32);
                        k.for_range(lo, hi, 1u32, |k, j| {
                            let wa = k.index_addr(col_idx, j, 4);
                            let w = k.ld_global(wa, 0);
                            let nca = k.index_addr(prev, w, 4);
                            let cw = k.ld_global_strong(nca, 0);
                            let same = k.set_eq(cw, c);
                            k.alu_into(conflict, AluOp::Or, conflict, same);
                        });
                        k.if_else(
                            conflict,
                            |k| k.alu_into(c, AluOp::Add, c, 1u32),
                            |k| k.mov_into(settled, 1u32),
                        );
                    },
                );
                k.mov_into(out, c);
            });
        });
        let na = k.index_addr(next, v, 4);
        k.st_global_strong(na, 0, out);
    }

    /// Deliberately imbalanced partitions (block 0 owns half the vertices)
    /// so work stealing actually happens, as the paper's Figure 2 motivates.
    fn partition_bounds(&self) -> (Vec<u32>, Vec<u32>) {
        let half = self.vertices / 2;
        let rest = self.vertices - half;
        let per = rest / (self.blocks - 1).max(1);
        let mut starts = vec![0u32];
        let mut ends = vec![half];
        for b in 1..self.blocks {
            starts.push(ends[b as usize - 1]);
            let end = if b == self.blocks - 1 {
                self.vertices
            } else {
                half + b * per
            };
            ends.push(end);
        }
        (starts, ends)
    }
}

impl Benchmark for GraphColoring {
    fn name(&self) -> &'static str {
        "GCOL"
    }

    fn description(&self) -> &'static str {
        "Jones-Plassmann colouring with Figure-3 work stealing over vertex partitions"
    }

    fn expected_races(&self) -> usize {
        // The knobs interact at shared instructions (the three static
        // atomics on `nextHead` observe each other), so only the calibrated
        // configurations carry exact budgets: the canonical racey config
        // (6) and the all-correct config (0). See the knob-sweep tests.
        let r = &self.races;
        if *r == Self::racey().races {
            6
        } else if *r == GraphColoringRaces::default() {
            0
        } else {
            // Conservative lower bound for ad-hoc configurations.
            usize::from(
                r.block_scope_own_head
                    || r.block_scope_steal
                    || r.weak_head_scan
                    || r.block_scope_color_fence
                    || r.block_scope_generation_flag,
            )
        }
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let g = rmat(self.vertices as usize, self.edges as usize, self.seed);
        let (reference, rounds) = self.reference(&g);
        let program = self.build_kernel(rounds);

        let row_ptr = gpu.mem_mut().alloc_words(self.vertices + 1);
        let col_idx = gpu.mem_mut().alloc_words(g.num_edges().max(1) as u32);
        let colors_a = gpu.mem_mut().alloc_words(self.vertices);
        let colors_b = gpu.mem_mut().alloc_words(self.vertices);
        let next_head = gpu.mem_mut().alloc_words(rounds * self.blocks);
        let pend = gpu.mem_mut().alloc_words(self.blocks);
        let gen = gpu.mem_mut().alloc_words(self.blocks);

        gpu.mem_mut().copy_in(row_ptr, &g.row_ptr);
        gpu.mem_mut().copy_in(col_idx, &g.col_idx);
        gpu.mem_mut().fill(colors_a, 0);
        gpu.mem_mut().fill(colors_b, 0);
        gpu.mem_mut().fill(gen, 0);
        let (starts, ends) = self.partition_bounds();
        gpu.mem_mut().copy_in(pend, &ends);
        let nh: Vec<u32> = (0..rounds).flat_map(|_| starts.iter().copied()).collect();
        gpu.mem_mut().copy_in(next_head, &nh);

        let stats = gpu.launch(
            &program,
            self.blocks,
            self.threads_per_block,
            &[
                row_ptr.addr(),
                col_idx.addr(),
                colors_a.addr(),
                colors_b.addr(),
                next_head.addr(),
                pend.addr(),
                gen.addr(),
            ],
        )?;

        let output_valid = if self.expected_races() == 0 {
            let final_buf = if rounds % 2 == 0 { colors_a } else { colors_b };
            let got = gpu.mem().copy_out(final_buf);
            Some(got == reference && is_proper_coloring(&g, &got))
        } else {
            None
        };
        Ok(AppRun::new(stats, 1, output_valid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> GraphColoring {
        GraphColoring {
            vertices: 256,
            edges: 512,
            blocks: 4,
            threads_per_block: 32,
            ..GraphColoring::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn reference_produces_proper_coloring() {
        let app = small();
        let g = rmat(app.vertices as usize, app.edges as usize, app.seed);
        let (colors, rounds) = app.reference(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert!(rounds >= 1);
    }

    #[test]
    fn racey_config_produces_six_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        // Race budgets are calibrated at the default sizes.
        let app = GraphColoring::racey();
        app.run(&mut gpu).unwrap();
        let mut u: Vec<_> = gpu.races().unwrap().unique_races().collect();
        u.sort_by_key(|(pc, k)| (*pc, format!("{k}")));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            app.expected_races(),
            "{u:?}"
        );
    }
}
