//! Graph Connectivity (GCON, Table II).
//!
//! Connected components by label propagation: every vertex starts with its
//! own id and repeatedly lowers its label to the minimum over its
//! neighbours with a device-scoped `atomicMin`. Labels are *read*
//! atomically, so no fences are needed; rounds (enough for synchronous
//! propagation to reach the fixpoint, computed by the CPU reference) are
//! separated by a generation-flag grid sync. Vertices are distributed among
//! blocks with the same Figure-3 work-stealing scheme as GCOL.
//!
//! The canonical racey configuration yields the paper's 5 unique races.
//!
//! The getWork emitter is intentionally duplicated with GCOL's rather than
//! shared: the unique-race budgets are calibrated against each kernel's
//! exact instruction layout, and keeping the emitters local keeps a change
//! to one benchmark from silently invalidating the other's calibration.

use scord_isa::{AluOp, KernelBuilder, Program, Reg, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::common::{grid_sync, GridSyncScopes};
use crate::graphgen::{reference_components, rmat, CsrGraph};
use crate::{AppRun, Benchmark};

/// Race-injection knobs for GCON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphConnectivityRaces {
    /// `atomicAdd_block` on the block's own `nextHead` (Figure 3b's bug).
    pub block_scope_own_head: bool,
    /// Block scope on the stealing `atomicAdd`.
    pub block_scope_steal: bool,
    /// Lower labels with a block-scoped `atomicMin`.
    pub block_scope_min: bool,
    /// Read neighbour labels with weak loads instead of atomic reads.
    pub weak_label_read: bool,
    /// Raise the generation flag with a block-scoped `atomicExch`.
    pub block_scope_generation_flag: bool,
}

/// The graph-connectivity benchmark.
#[derive(Debug, Clone)]
pub struct GraphConnectivity {
    /// Vertices (paper: 100K; scaled default: 1024).
    pub vertices: u32,
    /// Undirected edges to generate (paper: 150K; scaled default: 1536).
    pub edges: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Grid blocks (all resident).
    pub blocks: u32,
    /// Race knobs.
    pub races: GraphConnectivityRaces,
    /// Graph seed.
    pub seed: u64,
}

impl Default for GraphConnectivity {
    fn default() -> Self {
        GraphConnectivity {
            vertices: 1024,
            edges: 1536,
            threads_per_block: 64,
            blocks: 8,
            races: GraphConnectivityRaces::default(),
            seed: 0x6c02,
        }
    }
}

impl GraphConnectivity {
    /// The canonical racey configuration (5 unique races).
    #[must_use]
    pub fn racey() -> Self {
        GraphConnectivity {
            races: GraphConnectivityRaces {
                block_scope_own_head: true,
                block_scope_steal: false,
                block_scope_min: true,
                weak_label_read: false,
                block_scope_generation_flag: true,
            },
            ..Self::default()
        }
    }

    /// The correctly-synchronized configuration with the graph (and the
    /// grid that walks it) scaled up `mult`× — a perf-harness knob for
    /// demonstrating intra-simulation parallelism on a simulation big
    /// enough to matter. Not used by any paper table: the unique-race
    /// budgets are calibrated at the default sizes only.
    #[must_use]
    pub fn scaled(mult: u32) -> Self {
        let mult = mult.max(1);
        let base = Self::default();
        GraphConnectivity {
            vertices: base.vertices * mult,
            edges: base.edges * mult,
            // Grow the grid with the graph so the extra work spreads over
            // more SMs instead of lengthening each block's queue — but cap
            // it at the grid size that stays *fully resident* on
            // paper_default hardware. The kernel's inter-block sync spins
            // on flags other blocks publish, so a block that never becomes
            // resident wedges every resident one; on paper_default the
            // kernel's occupancy is 6 blocks/SM × 15 SMs (measured: 90
            // blocks converges, 91 spins until the watchdog).
            blocks: (base.blocks * mult).min(90),
            ..base
        }
    }

    /// Synchronous pull rounds until the labelling reaches its fixpoint.
    #[must_use]
    pub fn reference_rounds(g: &CsrGraph) -> u32 {
        let n = g.num_vertices();
        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut rounds = 0u32;
        loop {
            let prev = label.clone();
            let mut changed = false;
            for v in 0..n {
                let mut best = prev[v];
                for &w in g.neighbors(v) {
                    best = best.min(prev[w as usize]);
                }
                if best < label[v] {
                    label[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rounds += 1;
        }
        rounds.max(1)
    }

    #[allow(clippy::too_many_lines)]
    fn build_kernel(&self, rounds: u32) -> Program {
        let r = &self.races;
        let own_scope = if r.block_scope_own_head {
            Scope::Block
        } else {
            Scope::Device
        };
        let steal_scope = if r.block_scope_steal {
            Scope::Block
        } else {
            Scope::Device
        };
        let min_scope = if r.block_scope_min {
            Scope::Block
        } else {
            Scope::Device
        };
        let weak_read = r.weak_label_read;
        let sync_scopes = GridSyncScopes {
            exch: if r.block_scope_generation_flag {
                Scope::Block
            } else {
                Scope::Device
            },
            ..GridSyncScopes::device()
        };

        // params: row_ptr, col_idx, labels, next_head, pend, gen
        let mut k = KernelBuilder::new("gcon", 6);
        let row_ptr = k.ld_param(0);
        let col_idx = k.ld_param(1);
        let labels = k.ld_param(2);
        let next_head = k.ld_param(3);
        let pend = k.ld_param(4);
        let gen = k.ld_param(5);
        let mailbox = k.alloc_shared(8);

        let tid = k.special(SpecialReg::Tid);
        let ntid = k.special(SpecialReg::Ntid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let nblocks = k.special(SpecialReg::Nctaid);
        let leader = k.set_eq(tid, 0u32);
        let shbase = k.mov(mailbox);
        let round = k.mov(1u32);

        k.for_range(0u32, rounds, 1u32, |k, rr| {
            let nh_base = k.mul(rr, nblocks);
            let exhausted = k.mov(0u32);
            k.while_loop(
                |k| k.set_eq(exhausted, 0u32),
                |k| {
                    k.if_then(leader, |k| {
                        let victim = k.mov(0u32);
                        let batch = k.mov(0u32);
                        let own_idx = k.add(nh_base, ctaid);
                        let own_nh = k.index_addr(next_head, own_idx, 4);
                        let curr = k.atom_add(own_nh, 0, ntid, own_scope);
                        let ea = k.index_addr(pend, ctaid, 4);
                        let own_end = k.ld_global(ea, 0);
                        let got = k.set_lt(curr, own_end);
                        k.if_else(
                            got,
                            |k| {
                                let c1 = k.add(ctaid, 1u32);
                                k.mov_into(victim, c1);
                                k.mov_into(batch, curr);
                            },
                            |k| {
                                let vb = k.mov(0u32);
                                k.while_loop(
                                    |k| {
                                        let more = k.set_lt(vb, nblocks);
                                        let none = k.set_eq(victim, 0u32);
                                        k.logical_and(more, none)
                                    },
                                    |k| {
                                        let idx = k.add(nh_base, vb);
                                        let nh = k.index_addr(next_head, idx, 4);
                                        let head = k.atom_read(nh, 0, Scope::Device);
                                        let ea = k.index_addr(pend, vb, 4);
                                        let end = k.ld_global(ea, 0);
                                        let avail = k.set_lt(head, end);
                                        k.if_then(avail, |k| {
                                            let got2 = k.atom_add(nh, 0, ntid, steal_scope);
                                            let ok = k.set_lt(got2, end);
                                            k.if_then(ok, |k| {
                                                let v1 = k.add(vb, 1u32);
                                                k.mov_into(victim, v1);
                                                k.mov_into(batch, got2);
                                            });
                                        });
                                        k.alu_into(vb, AluOp::Add, vb, 1u32);
                                    },
                                );
                            },
                        );
                        k.st_shared(shbase, 0, victim);
                        k.st_shared(shbase, 4, batch);
                    });
                    k.bar();
                    let victim = k.ld_shared(shbase, 0);
                    let batch = k.ld_shared(shbase, 4);
                    k.bar();
                    let none = k.set_eq(victim, 0u32);
                    k.if_else(
                        none,
                        |k| k.mov_into(exhausted, 1u32),
                        |k| {
                            let vb = k.sub(victim, 1u32);
                            let v = k.add(batch, tid);
                            let ea = k.index_addr(pend, vb, 4);
                            let end = k.ld_global(ea, 0);
                            let below = k.set_lt(v, end);
                            k.if_then(below, |k| {
                                Self::emit_relax_vertex(
                                    k, row_ptr, col_idx, labels, v, min_scope, weak_read,
                                );
                            });
                        },
                    );
                },
            );
            grid_sync(k, gen, round, sync_scopes);
            k.alu_into(round, AluOp::Add, round, 1u32);
        });
        k.finish().expect("gcon kernel is well-formed")
    }

    fn emit_relax_vertex(
        k: &mut KernelBuilder,
        row_ptr: Reg,
        col_idx: Reg,
        labels: Reg,
        v: Reg,
        min_scope: Scope,
        weak_read: bool,
    ) {
        let la = k.index_addr(labels, v, 4);
        let lv = k.atom_read(la, 0, Scope::Device);
        let best = k.mov(lv);
        let ra = k.index_addr(row_ptr, v, 4);
        let lo = k.ld_global(ra, 0);
        let hi = k.ld_global(ra, 4);
        k.for_range(lo, hi, 1u32, |k, j| {
            let wa = k.index_addr(col_idx, j, 4);
            let w = k.ld_global(wa, 0);
            let nla = k.index_addr(labels, w, 4);
            let lw = if weak_read {
                k.ld_global(nla, 0)
            } else {
                k.atom_read(nla, 0, Scope::Device)
            };
            k.alu_into(best, AluOp::Min, best, lw);
        });
        let lower = k.set_lt(best, lv);
        k.if_then(lower, |k| {
            k.atom_noret(scord_isa::AtomOp::Min, la, 0, best, min_scope);
        });
    }
}

impl Benchmark for GraphConnectivity {
    fn name(&self) -> &'static str {
        "GCON"
    }

    fn description(&self) -> &'static str {
        "connected components via atomicMin label propagation with work stealing"
    }

    fn expected_races(&self) -> usize {
        // Exact budgets are calibrated for the canonical configurations
        // (knobs interact at shared instructions; see the knob-sweep
        // tests).
        let r = &self.races;
        if *r == Self::racey().races {
            5
        } else if *r == GraphConnectivityRaces::default() {
            0
        } else {
            usize::from(
                r.block_scope_own_head
                    || r.block_scope_steal
                    || r.block_scope_min
                    || r.weak_label_read
                    || r.block_scope_generation_flag,
            )
        }
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let g = rmat(self.vertices as usize, self.edges as usize, self.seed);
        let rounds = Self::reference_rounds(&g);
        let program = self.build_kernel(rounds);

        let row_ptr = gpu.mem_mut().alloc_words(self.vertices + 1);
        let col_idx = gpu.mem_mut().alloc_words(g.num_edges().max(1) as u32);
        let labels = gpu.mem_mut().alloc_words(self.vertices);
        let next_head = gpu.mem_mut().alloc_words(rounds * self.blocks);
        let pend = gpu.mem_mut().alloc_words(self.blocks);
        let gen = gpu.mem_mut().alloc_words(self.blocks);

        gpu.mem_mut().copy_in(row_ptr, &g.row_ptr);
        gpu.mem_mut().copy_in(col_idx, &g.col_idx);
        let init: Vec<u32> = (0..self.vertices).collect();
        gpu.mem_mut().copy_in(labels, &init);
        gpu.mem_mut().fill(gen, 0);
        // Imbalanced partitions (block 0 owns half) so stealing happens.
        let half = self.vertices / 2;
        let per = (self.vertices - half) / (self.blocks - 1).max(1);
        let mut starts = vec![0u32];
        let mut ends = vec![half];
        for b in 1..self.blocks {
            starts.push(ends[b as usize - 1]);
            ends.push(if b == self.blocks - 1 {
                self.vertices
            } else {
                half + b * per
            });
        }
        gpu.mem_mut().copy_in(pend, &ends);
        let nh: Vec<u32> = (0..rounds).flat_map(|_| starts.iter().copied()).collect();
        gpu.mem_mut().copy_in(next_head, &nh);

        let stats = gpu.launch(
            &program,
            self.blocks,
            self.threads_per_block,
            &[
                row_ptr.addr(),
                col_idx.addr(),
                labels.addr(),
                next_head.addr(),
                pend.addr(),
                gen.addr(),
            ],
        )?;

        let output_valid = if self.expected_races() == 0 {
            let got = gpu.mem().copy_out(labels);
            Some(got == reference_components(&g))
        } else {
            None
        };
        Ok(AppRun::new(stats, 1, output_valid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> GraphConnectivity {
        GraphConnectivity {
            vertices: 256,
            edges: 384,
            blocks: 4,
            threads_per_block: 32,
            ..GraphConnectivity::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn scaled_grows_graph_and_grid_and_stays_race_free() {
        let s = GraphConnectivity::scaled(4);
        let base = GraphConnectivity::default();
        assert_eq!(s.vertices, base.vertices * 4);
        assert_eq!(s.edges, base.edges * 4);
        assert_eq!(s.blocks, base.blocks * 4);
        assert_eq!(s.races, GraphConnectivityRaces::default());
        assert_eq!(s.expected_races(), 0);
        // The grid cap keeps huge multipliers fully resident: the kernel's
        // inter-block sync wedges if any block waits for a free slot.
        assert_eq!(GraphConnectivity::scaled(100).blocks, 90);
        // A scaled run must still validate: same kernel, bigger instance.
        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let run = GraphConnectivity::scaled(2).run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
    }

    #[test]
    fn racey_config_produces_five_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        // Race budgets are calibrated at the default sizes.
        let app = GraphConnectivity::racey();
        app.run(&mut gpu).unwrap();
        let mut u: Vec<_> = gpu.races().unwrap().unique_races().collect();
        u.sort_by_key(|(pc, k)| (*pc, format!("{k}")));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            app.expected_races(),
            "{u:?}"
        );
    }
}
