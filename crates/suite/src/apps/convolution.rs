//! 1-D Convolution (1DC, Table II).
//!
//! Each thread performs the computation for one input element and *scatters*
//! its contributions into the output with atomics. An output element near a
//! block boundary receives contributions from threads of neighbouring blocks
//! and therefore needs **device**-scoped atomics; interior elements are only
//! updated from within one block, where **block** scope suffices — the
//! scope-selection optimization the paper describes. The single injectable
//! race uses block scope at the boundary too (1 unique scoped-atomic race).

use scord_core::SplitMix64;

use scord_isa::{KernelBuilder, Program, Scope};
use scord_sim::{Gpu, SimError};

use crate::{AppRun, Benchmark};

/// Race-injection knobs for 1DC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvolutionRaces {
    /// Use block scope for boundary-element atomics (the 1 unique race).
    pub block_scope_boundary: bool,
}

/// The 1-D convolution benchmark.
#[derive(Debug, Clone)]
pub struct Convolution1D {
    /// Input length (paper: 1M; scaled default: 8192).
    pub elements: u32,
    /// Filter taps (paper: 9 elements).
    pub filter: Vec<i32>,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Race knobs.
    pub races: ConvolutionRaces,
    /// Input-generation seed.
    pub seed: u64,
}

impl Default for Convolution1D {
    fn default() -> Self {
        Convolution1D {
            elements: 8192,
            filter: vec![1, -2, 3, -4, 5, -4, 3, -2, 1],
            threads_per_block: 128,
            races: ConvolutionRaces::default(),
            seed: 0x1dc0,
        }
    }
}

impl Convolution1D {
    /// The canonical racey configuration (1 unique race).
    #[must_use]
    pub fn racey() -> Self {
        Convolution1D {
            races: ConvolutionRaces {
                block_scope_boundary: true,
            },
            ..Self::default()
        }
    }

    fn build_kernel(&self) -> Program {
        let taps = self.filter.len() as u32;
        let half = taps / 2;
        let mut k = KernelBuilder::new("conv1d", 4);
        let input = k.ld_param(0);
        let output = k.ld_param(1);
        let filter = k.ld_param(2);
        let n = k.ld_param(3);
        let t = k.global_tid();
        let in_range = k.set_lt(t, n);
        let tpb = self.threads_per_block;
        let boundary_scope = if self.races.block_scope_boundary {
            Scope::Block
        } else {
            Scope::Device
        };
        k.if_then(in_range, |k| {
            let ia = k.index_addr(input, t, 4);
            let x = k.ld_global(ia, 0);
            k.for_range(0u32, taps, 1u32, |k, j| {
                // idx = t + j - half
                let tj = k.add(t, j);
                let idx = k.sub(tj, half);
                let ge = k.set_ge(idx, 0u32);
                let lt = k.set_lt(idx, n);
                let ok = k.logical_and(ge, lt);
                k.if_then(ok, |k| {
                    let fa = k.index_addr(filter, j, 4);
                    let f = k.ld_global(fa, 0);
                    let v = k.mul(x, f);
                    let oa = k.index_addr(output, idx, 4);
                    // Boundary if idx is within `half` of a block edge.
                    let m = k.rem(idx, tpb);
                    let low = k.set_lt(m, half as i32);
                    let hi = k.set_ge(m, (tpb - half) as i32);
                    let b = k.logical_or(low, hi);
                    k.if_else(
                        b,
                        |k| k.atom_add_noret(oa, 0, v, boundary_scope),
                        |k| k.atom_add_noret(oa, 0, v, Scope::Block),
                    );
                });
            });
        });
        k.finish().expect("conv1d kernel is well-formed")
    }

    fn inputs(&self) -> Vec<u32> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.elements).map(|_| rng.range_u32(0, 64)).collect()
    }

    /// CPU reference (same scatter formulation, wrapping arithmetic).
    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let n = self.elements as usize;
        let half = self.filter.len() / 2;
        let mut out = vec![0u32; n];
        for (t, &x) in input.iter().enumerate() {
            for (j, &f) in self.filter.iter().enumerate() {
                let idx = t as i64 + j as i64 - half as i64;
                if idx >= 0 && (idx as usize) < n {
                    out[idx as usize] = out[idx as usize].wrapping_add(x.wrapping_mul(f as u32));
                }
            }
        }
        out
    }

    fn grid(&self) -> u32 {
        self.elements.div_ceil(self.threads_per_block)
    }
}

impl Benchmark for Convolution1D {
    fn name(&self) -> &'static str {
        "1DC"
    }

    fn description(&self) -> &'static str {
        "1-D convolution scattering with block/device-scoped atomics by boundary"
    }

    fn expected_races(&self) -> usize {
        usize::from(self.races.block_scope_boundary)
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let program = self.build_kernel();
        let input = self.inputs();
        let inbuf = gpu.mem_mut().alloc_words(self.elements);
        let outbuf = gpu.mem_mut().alloc_words(self.elements);
        let fbuf = gpu.mem_mut().alloc_words(self.filter.len() as u32);
        gpu.mem_mut().copy_in(inbuf, &input);
        let taps: Vec<u32> = self.filter.iter().map(|&f| f as u32).collect();
        gpu.mem_mut().copy_in(fbuf, &taps);
        gpu.mem_mut().fill(outbuf, 0);

        let stats = gpu.launch(
            &program,
            self.grid(),
            self.threads_per_block,
            &[inbuf.addr(), outbuf.addr(), fbuf.addr(), self.elements],
        )?;

        // Atomics keep the scatter functionally exact even in the racey
        // configuration, so 1DC can always validate.
        let got = gpu.mem().copy_out(outbuf);
        let valid = got == self.reference(&input);
        Ok(AppRun::new(stats, 1, Some(valid)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> Convolution1D {
        Convolution1D {
            elements: 1024,
            ..Convolution1D::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn racey_config_produces_exactly_one_scoped_atomic_race() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        let app = Convolution1D {
            elements: 1024,
            ..Convolution1D::racey()
        };
        let run = app.run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true), "atomics stay functional");
        assert_eq!(gpu.races().unwrap().unique_count(), app.expected_races());
    }
}
