//! Unbalanced Tree Search (UTS, Table II — paper Figure 5).
//!
//! Trees are generated implicitly: a node's child count and child payloads
//! come from a hash of its payload, so the workload is deterministic but
//! heavily unbalanced. Each block owns a **local stack** guarded by a
//! block-scoped lock and a **global stack** guarded by a device-scoped lock
//! (Figure 5's two-level scheme). Threads pop nodes from their local stack,
//! steal from any global stack when it runs dry, and push a fraction of the
//! children they generate onto their block's global stack so work can be
//! stolen. An `active` counter of outstanding nodes provides termination.
//!
//! The canonical racey configuration yields the paper's 6 unique races.

use scord_isa::{AluOp, KernelBuilder, LockConfig, Program, Reg, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::{AppRun, Benchmark};

/// Race-injection knobs for UTS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtsRaces {
    /// Guard the global stacks with block-scoped lock acquires (Figure 5
    /// with `atomicCAS_block` on the *global* stack).
    pub block_scope_global_lock: bool,
    /// Bump the `active` counter with block-scoped atomics.
    pub block_scope_active_counter: bool,
    /// Fold the per-thread results into the global count/checksum with
    /// block-scoped atomics (2 races).
    pub block_scope_result_adds: bool,
}

/// The unbalanced-tree-search benchmark.
#[derive(Debug, Clone)]
pub struct Uts {
    /// Root nodes per block (paper: 120 trees).
    pub roots_per_block: u32,
    /// Maximum tree depth (paper: 9 levels).
    pub max_depth: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Grid blocks.
    pub blocks: u32,
    /// Race knobs.
    pub races: UtsRaces,
    /// Root-payload seed.
    pub seed: u32,
}

impl Default for Uts {
    fn default() -> Self {
        Uts {
            roots_per_block: 2,
            max_depth: 9,
            threads_per_block: 32,
            blocks: 8,
            races: UtsRaces::default(),
            seed: 0x075,
        }
    }
}

/// The 32-bit mixing hash used for tree generation, shared between the
/// kernel and the CPU reference.
#[must_use]
pub fn uts_hash(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    x
}

const PAYLOAD_MASK: u32 = 0x0FFF_FFFF;

fn node_depth(node: u32) -> u32 {
    node >> 28
}

fn node_payload(node: u32) -> u32 {
    node & PAYLOAD_MASK
}

fn children_count(node: u32, max_depth: u32) -> u32 {
    if node_depth(node) >= max_depth {
        0
    } else {
        uts_hash(node_payload(node) ^ 0xABCD) & 3
    }
}

fn child_node(node: u32, i: u32) -> u32 {
    let payload = uts_hash(node_payload(node) ^ ((i + 1).wrapping_mul(0x9E37))) & PAYLOAD_MASK;
    ((node_depth(node) + 1) << 28) | payload
}

impl Uts {
    /// The canonical racey configuration (6 unique races).
    #[must_use]
    pub fn racey() -> Self {
        Uts {
            races: UtsRaces {
                block_scope_global_lock: true,
                block_scope_active_counter: false,
                block_scope_result_adds: true,
            },
            ..Self::default()
        }
    }

    /// The root nodes seeded into each block's local stack.
    fn roots(&self) -> Vec<Vec<u32>> {
        (0..self.blocks)
            .map(|b| {
                (0..self.roots_per_block)
                    .map(|r| uts_hash(self.seed ^ (b * 131 + r)) & PAYLOAD_MASK)
                    .collect()
            })
            .collect()
    }

    /// CPU reference DFS: `(total nodes, wrapping payload checksum)`.
    #[must_use]
    pub fn reference(&self) -> (u32, u32) {
        let mut count = 0u32;
        let mut sum = 0u32;
        let mut stack: Vec<u32> = self.roots().into_iter().flatten().collect();
        while let Some(node) = stack.pop() {
            count += 1;
            sum = sum.wrapping_add(node_payload(node));
            for i in 0..children_count(node, self.max_depth) {
                stack.push(child_node(node, i));
            }
        }
        (count, sum)
    }

    /// Emits the hash as IR.
    fn emit_hash(k: &mut KernelBuilder, x: Reg) -> Reg {
        let s1 = k.alu(AluOp::Shr, x, 16u32);
        let x1 = k.alu(AluOp::Xor, x, s1);
        let x2 = k.mul(x1, 0x7feb_352du32);
        let s2 = k.alu(AluOp::Shr, x2, 15u32);
        let x3 = k.alu(AluOp::Xor, x2, s2);
        let x4 = k.mul(x3, 0x846c_a68bu32);
        let s3 = k.alu(AluOp::Shr, x4, 16u32);
        k.alu(AluOp::Xor, x4, s3)
    }

    /// Emits a stack pop inside a critical section. `top_addr`/`items_addr`
    /// point at the stack's top word and item array.
    fn emit_pop(
        k: &mut KernelBuilder,
        lock: Reg,
        cfg: LockConfig,
        top_addr: Reg,
        items_addr: Reg,
        node: Reg,
        got: Reg,
    ) {
        k.critical_section(lock, 0, cfg, |k| {
            let top = k.ld_global_strong(top_addr, 0);
            let nonempty = k.alu(AluOp::SetGt, top, 0u32);
            k.if_then(nonempty, |k| {
                let t1 = k.sub(top, 1u32);
                let ia = k.index_addr(items_addr, t1, 4);
                let item = k.ld_global_strong(ia, 0);
                k.mov_into(node, item);
                k.st_global_strong(top_addr, 0, t1);
                k.mov_into(got, 1u32);
            });
        });
    }

    /// Emits a stack push inside a critical section.
    fn emit_push(
        k: &mut KernelBuilder,
        lock: Reg,
        cfg: LockConfig,
        top_addr: Reg,
        items_addr: Reg,
        node: Reg,
    ) {
        k.critical_section(lock, 0, cfg, |k| {
            let top = k.ld_global_strong(top_addr, 0);
            let ia = k.index_addr(items_addr, top, 4);
            k.st_global_strong(ia, 0, node);
            let t1 = k.add(top, 1u32);
            k.st_global_strong(top_addr, 0, t1);
        });
    }

    #[allow(clippy::too_many_lines)]
    fn build_kernel(&self, capacity: u32) -> Program {
        let r = &self.races;
        let local_cfg = LockConfig::block();
        let global_cfg = if r.block_scope_global_lock {
            LockConfig {
                cas_scope: Scope::Block,
                exch_scope: Scope::Block,
                ..LockConfig::device()
            }
        } else {
            LockConfig::device()
        };
        let active_scope = if r.block_scope_active_counter {
            Scope::Block
        } else {
            Scope::Device
        };
        let result_scope = if r.block_scope_result_adds {
            Scope::Block
        } else {
            Scope::Device
        };
        let max_depth = self.max_depth;

        // params: ltop, litems, gtop, gitems, llock, glock, active, out
        let mut k = KernelBuilder::new("uts", 8);
        let ltop = k.ld_param(0);
        let litems = k.ld_param(1);
        let gtop = k.ld_param(2);
        let gitems = k.ld_param(3);
        let llock = k.ld_param(4);
        let glock = k.ld_param(5);
        let active = k.ld_param(6);
        let out = k.ld_param(7);

        let ctaid = k.special(SpecialReg::Ctaid);
        let nblocks = k.special(SpecialReg::Nctaid);
        // My block's stack base addresses.
        let my_ltop = k.index_addr(ltop, ctaid, 4);
        let loff = k.mul(ctaid, capacity);
        let my_litems = k.index_addr(litems, loff, 4);
        let my_llock = k.index_addr(llock, ctaid, 4);
        let my_gtop = k.index_addr(gtop, ctaid, 4);
        let my_gitems = k.index_addr(gitems, loff, 4);
        let my_glock = k.index_addr(glock, ctaid, 4);

        let my_count = k.mov(0u32);
        let my_sum = k.mov(0u32);
        let done = k.mov(0u32);

        k.while_loop(
            |k| k.set_eq(done, 0u32),
            |k| {
                let node = k.mov(0u32);
                let got = k.mov(0u32);
                // Local stack first (block-scoped lock, Figure 5 top half).
                Self::emit_pop(k, my_llock, local_cfg, my_ltop, my_litems, node, got);
                // Otherwise steal from the global stacks (device-scoped).
                k.if_zero(got, |k| {
                    let gb = k.mov(0u32);
                    k.while_loop(
                        |k| {
                            let more = k.set_lt(gb, nblocks);
                            let missing = k.set_eq(got, 0u32);
                            k.logical_and(more, missing)
                        },
                        |k| {
                            let bsum = k.add(ctaid, gb);
                            let b = k.rem(bsum, nblocks);
                            let ta = k.index_addr(gtop, b, 4);
                            let la = k.index_addr(glock, b, 4);
                            let boff = k.mul(b, capacity);
                            let ia = k.index_addr(gitems, boff, 4);
                            Self::emit_pop(k, la, global_cfg, ta, ia, node, got);
                            k.alu_into(gb, AluOp::Add, gb, 1u32);
                        },
                    );
                });
                k.if_else(
                    got,
                    |k| {
                        k.alu_into(my_count, AluOp::Add, my_count, 1u32);
                        let payload = k.alu(AluOp::And, node, PAYLOAD_MASK);
                        k.alu_into(my_sum, AluOp::Add, my_sum, payload);
                        // children
                        let hx = k.alu(AluOp::Xor, payload, 0xABCDu32);
                        let h = Self::emit_hash(k, hx);
                        let nc0 = k.alu(AluOp::And, h, 3u32);
                        let depth = k.alu(AluOp::Shr, node, 28u32);
                        let deep = k.set_ge(depth, max_depth);
                        let zero = k.mov(0u32);
                        let nc = k.select(deep, zero, nc0);
                        k.atom_add_noret(active, 0, nc, active_scope);
                        let d1 = k.add(depth, 1u32);
                        let d1s = k.alu(AluOp::Shl, d1, 28u32);
                        k.for_range(0u32, nc, 1u32, |k, i| {
                            let i1 = k.add(i, 1u32);
                            let im = k.mul(i1, 0x9E37u32);
                            let cx = k.alu(AluOp::Xor, payload, im);
                            let ch = Self::emit_hash(k, cx);
                            let cp = k.alu(AluOp::And, ch, PAYLOAD_MASK);
                            let child = k.alu(AluOp::Or, d1s, cp);
                            // Every 8th processed node shares its first
                            // child through the global stack.
                            let m = k.alu(AluOp::And, my_count, 7u32);
                            let share0 = k.set_eq(m, 0u32);
                            let first = k.set_eq(i, 0u32);
                            let share = k.logical_and(share0, first);
                            k.if_else(
                                share,
                                |k| {
                                    Self::emit_push(
                                        k, my_glock, global_cfg, my_gtop, my_gitems, child,
                                    );
                                },
                                |k| {
                                    Self::emit_push(
                                        k, my_llock, local_cfg, my_ltop, my_litems, child,
                                    );
                                },
                            );
                        });
                        // This node is finished.
                        k.atom_noret(scord_isa::AtomOp::Add, active, 0, u32::MAX, active_scope);
                    },
                    |k| {
                        // No work found: exit once everything is consumed.
                        let a = k.atom_read(active, 0, Scope::Device);
                        let finished = k.set_eq(a, 0u32);
                        k.if_then(finished, |k| k.mov_into(done, 1u32));
                    },
                );
            },
        );
        // Fold per-thread results into the global output.
        k.atom_add_noret(out, 0, my_count, result_scope);
        k.atom_add_noret(out, 4, my_sum, result_scope);
        k.finish().expect("uts kernel is well-formed")
    }
}

impl Benchmark for Uts {
    fn name(&self) -> &'static str {
        "UTS"
    }

    fn description(&self) -> &'static str {
        "unbalanced tree search: block-scoped local stacks, device-scoped global stacks"
    }

    fn expected_races(&self) -> usize {
        let r = &self.races;
        // Calibrated at the default sizes (see the knob-sweep tests): the
        // global lock words race at the steal-CAS/Exch and push-CAS/Exch;
        // the active counter at its increment, decrement and read; the two
        // result words at their final adds.
        4 * usize::from(r.block_scope_global_lock)
            + 3 * usize::from(r.block_scope_active_counter)
            + 2 * usize::from(r.block_scope_result_adds)
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let (total_nodes, checksum) = self.reference();
        let capacity = total_nodes + self.roots_per_block + 8;
        let program = self.build_kernel(capacity);
        let roots = self.roots();

        let ltop = gpu.mem_mut().alloc_words(self.blocks);
        let litems = gpu.mem_mut().alloc_words(self.blocks * capacity);
        let gtop = gpu.mem_mut().alloc_words(self.blocks);
        let gitems = gpu.mem_mut().alloc_words(self.blocks * capacity);
        let llock = gpu.mem_mut().alloc_words(self.blocks);
        let glock = gpu.mem_mut().alloc_words(self.blocks);
        let active = gpu.mem_mut().alloc_words(1);
        let out = gpu.mem_mut().alloc_words(2);

        for buf in [litems, gtop, gitems, llock, glock, out] {
            gpu.mem_mut().fill(buf, 0);
        }
        let tops: Vec<u32> = roots.iter().map(|r| r.len() as u32).collect();
        gpu.mem_mut().copy_in(ltop, &tops);
        for (b, r) in roots.iter().enumerate() {
            for (i, &node) in r.iter().enumerate() {
                gpu.mem_mut()
                    .write_word(litems.word_addr(b as u32 * capacity + i as u32), node);
            }
        }
        gpu.mem_mut()
            .write_word(active.word_addr(0), self.blocks * self.roots_per_block);

        let stats = gpu.launch(
            &program,
            self.blocks,
            self.threads_per_block,
            &[
                ltop.addr(),
                litems.addr(),
                gtop.addr(),
                gitems.addr(),
                llock.addr(),
                glock.addr(),
                active.addr(),
                out.addr(),
            ],
        )?;

        // The stacks and counters are lock/atomic protected, so the result
        // stays functionally exact even in racey configurations.
        let got_count = gpu.mem().read_word(out.word_addr(0));
        let got_sum = gpu.mem().read_word(out.word_addr(1));
        let valid = got_count == total_nodes && got_sum == checksum;
        Ok(AppRun::new(stats, 1, Some(valid)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> Uts {
        Uts {
            roots_per_block: 1,
            max_depth: 7,
            blocks: 4,
            threads_per_block: 32,
            ..Uts::default()
        }
    }

    #[test]
    fn reference_tree_is_nontrivial_and_deterministic() {
        let app = small();
        let (n1, s1) = app.reference();
        let (n2, s2) = app.reference();
        assert_eq!((n1, s1), (n2, s2));
        assert!(n1 > 10, "tree should have some body, got {n1} nodes");
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn racey_config_produces_six_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        // Race budgets are calibrated at the default sizes.
        let app = Uts::racey();
        let run = app.run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true), "locks stay functional");
        let mut u: Vec<_> = gpu.races().unwrap().unique_races().collect();
        u.sort_by_key(|(pc, k)| (*pc, format!("{k}")));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            app.expected_races(),
            "{u:?}"
        );
    }
}
