//! Matrix Multiplication (MM, Table II).
//!
//! `C = A · B` with the K dimension split across blocks: each block computes
//! partial dot products over its K-slice and accumulates them into the
//! shared `C` under **device-scoped per-element locks** (the Figure 5
//! acquire/release pattern). A second device lock protects a global
//! work counter used as a cross-block checksum.
//!
//! Injectable races (4 in the canonical configuration, calibrated at the
//! default sizes on the deterministic simulator):
//! * the checksum lock at block scope — the lock word races at its CAS and
//!   its Exch (2 unique scoped-atomic races);
//! * the per-element lock at block scope — likewise 2 unique scoped-atomic
//!   races at its CAS and Exch.
//!
//! A third knob injects the *fast-path* bug: odd K-slices update `C` with a
//! fence but **no lock** — the classic lockset violation. The one injected
//! bug is observed from the unlocked store and from the locked reader's
//! load and store, each also lacking device-fence ordering (6 unique
//! races at the default sizes); it is exercised by its own tests rather
//! than the canonical configuration because the number of instructions
//! that *observe* it is interleaving-dependent.

use scord_core::SplitMix64;

use scord_isa::{AluOp, KernelBuilder, LockConfig, Program, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::{AppRun, Benchmark};

/// Race-injection knobs for MM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatMulRaces {
    /// Narrow the per-element lock to block scope (2 races: CAS and Exch).
    pub block_scope_element_lock: bool,
    /// Narrow the checksum lock to block scope (2 races: CAS and Exch).
    pub block_scope_checksum_lock: bool,
    /// Odd slices skip the element lock (fence-only fast path): one
    /// lockset bug observed as 6 unique races at the default sizes.
    pub unlocked_fast_path: bool,
}

/// The matrix-multiplication benchmark.
#[derive(Debug, Clone)]
pub struct MatMul {
    /// Rows of `A` / `C` (paper: 800).
    pub m: u32,
    /// Columns of `A` / rows of `B` (paper: 500).
    pub k: u32,
    /// Columns of `B` / `C` (paper: 30).
    pub n: u32,
    /// K-dimension slices (each handled by a different set of blocks).
    pub k_slices: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Race knobs.
    pub races: MatMulRaces,
    /// Input seed.
    pub seed: u64,
}

impl Default for MatMul {
    fn default() -> Self {
        MatMul {
            m: 48,
            k: 64,
            n: 24,
            k_slices: 4,
            threads_per_block: 128,
            races: MatMulRaces::default(),
            seed: 0x3a73,
        }
    }
}

impl MatMul {
    /// The canonical racey configuration (4 unique races).
    #[must_use]
    pub fn racey() -> Self {
        MatMul {
            races: MatMulRaces {
                block_scope_element_lock: true,
                block_scope_checksum_lock: true,
                unlocked_fast_path: false,
            },
            ..Self::default()
        }
    }

    fn elems(&self) -> u32 {
        self.m * self.n
    }

    /// Blocks covering the element space, per K-slice.
    fn blocks_per_slice(&self) -> u32 {
        self.elems().div_ceil(self.threads_per_block)
    }

    fn grid(&self) -> u32 {
        self.blocks_per_slice() * self.k_slices
    }

    #[allow(clippy::too_many_lines)]
    fn build_kernel(&self) -> Program {
        // The race knobs narrow the whole lock operation (CAS and Exch) to
        // block scope while keeping the fences at device scope — Figure 5's
        // searchTree bug applied to a lock other threadblocks contend on.
        let elem_lock_cfg = if self.races.block_scope_element_lock {
            LockConfig {
                cas_scope: Scope::Block,
                exch_scope: Scope::Block,
                ..LockConfig::device()
            }
        } else {
            LockConfig::device()
        };
        let sum_lock_cfg = if self.races.block_scope_checksum_lock {
            LockConfig {
                cas_scope: Scope::Block,
                exch_scope: Scope::Block,
                ..LockConfig::device()
            }
        } else {
            LockConfig::device()
        };
        let fast_path = self.races.unlocked_fast_path;
        let (m, k_dim, n) = (self.m, self.k, self.n);
        let bps = self.blocks_per_slice();
        let slice_len = k_dim.div_ceil(self.k_slices);

        // params: A, B, C, locks (one per C element), sumlock, checksum,
        //         block_acc (one per block)
        let mut kb = KernelBuilder::new("matmul", 7);
        let a = kb.ld_param(0);
        let b = kb.ld_param(1);
        let c = kb.ld_param(2);
        let locks = kb.ld_param(3);
        let sumlock = kb.ld_param(4);
        let checksum = kb.ld_param(5);
        let block_acc = kb.ld_param(6);

        let tid = kb.special(SpecialReg::Tid);
        let ctaid = kb.special(SpecialReg::Ctaid);
        // Decompose block id: slice = ctaid / bps, tile = ctaid % bps.
        let slice = kb.div(ctaid, bps);
        let tile = kb.rem(ctaid, bps);
        let ntid = kb.special(SpecialReg::Ntid);
        let base = kb.mul(tile, ntid);
        let e = kb.add(base, tid); // my C element
        let in_range = kb.set_lt(e, m * n);
        kb.if_then(in_range, |kb| {
            let row = kb.div(e, n);
            let col = kb.rem(e, n);
            // partial = Σ_{kk in slice} A[row, kk] * B[kk, col]
            let k_lo = kb.mul(slice, slice_len);
            let k_hi0 = kb.add(k_lo, slice_len);
            let k_hi = kb.min(k_hi0, k_dim);
            let partial = kb.mov(0u32);
            let row_base = kb.mul(row, k_dim);
            kb.for_range(k_lo, k_hi, 1u32, |kb, kk| {
                let ai = kb.add(row_base, kk);
                let aa = kb.index_addr(a, ai, 4);
                let av = kb.ld_global(aa, 0);
                let bi0 = kb.mul(kk, n);
                let bi = kb.add(bi0, col);
                let ba = kb.index_addr(b, bi, 4);
                let bv = kb.ld_global(ba, 0);
                let prod = kb.mul(av, bv);
                kb.alu_into(partial, AluOp::Add, partial, prod);
            });
            // Accumulate into C[e] under the per-element lock — or, with the
            // fast-path bug enabled, odd slices skip the lock and only
            // fence.
            let la = kb.index_addr(locks, e, 4);
            let ca = kb.index_addr(c, e, 4);
            let use_fast = if fast_path {
                let parity = kb.rem(slice, 2u32);
                kb.set_eq(parity, 1u32)
            } else {
                kb.mov(0u32)
            };
            kb.if_else(
                use_fast,
                |kb| {
                    // The bug: a store-only "accumulate" with a fence but no
                    // lock — overwrites concurrent slices' contributions.
                    kb.st_global_strong(ca, 0, partial);
                    kb.fence(Scope::Device);
                },
                |kb| {
                    kb.critical_section(la, 0, elem_lock_cfg, |kb| {
                        let v = kb.ld_global_strong(ca, 0);
                        let v1 = kb.add(v, partial);
                        kb.st_global_strong(ca, 0, v1);
                    });
                },
            );
            // Per-block partial aggregation (correct device atomics), then
            // the block leader folds it into the global checksum under the
            // checksum lock.
            let ba = kb.index_addr(block_acc, ctaid, 4);
            kb.atom_add_noret(ba, 0, partial, Scope::Device);
        });
        kb.bar();
        let leader = kb.set_eq(tid, 0u32);
        kb.if_then(leader, |kb| {
            let ba = kb.index_addr(block_acc, ctaid, 4);
            let mine = kb.atom_add(ba, 0, 0u32, Scope::Device);
            kb.critical_section(sumlock, 0, sum_lock_cfg, |kb| {
                let v = kb.ld_global_strong(checksum, 0);
                let v1 = kb.add(v, mine);
                kb.st_global_strong(checksum, 0, v1);
            });
        });
        kb.finish().expect("matmul kernel is well-formed")
    }

    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let mut rng = SplitMix64::new(self.seed);
        let a = (0..self.m * self.k).map(|_| rng.range_u32(0, 32)).collect();
        let b = (0..self.k * self.n).map(|_| rng.range_u32(0, 32)).collect();
        (a, b)
    }

    fn reference(&self, a: &[u32], b: &[u32]) -> (Vec<u32>, u32) {
        let (m, k, n) = (self.m as usize, self.k as usize, self.n as usize);
        let mut c = vec![0u32; m * n];
        let mut checksum = 0u32;
        for i in 0..m {
            for j in 0..n {
                let mut s = 0u32;
                for kk in 0..k {
                    s = s.wrapping_add(a[i * k + kk].wrapping_mul(b[kk * n + j]));
                }
                c[i * n + j] = s;
                checksum = checksum.wrapping_add(s);
            }
        }
        (c, checksum)
    }
}

impl Benchmark for MatMul {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn description(&self) -> &'static str {
        "matrix multiply with K-sliced blocks accumulating into C under scoped locks"
    }

    fn expected_races(&self) -> usize {
        // Calibrated at the default sizes (see the knob-sweep tests). Each
        // block-scoped lock races at its CAS and its Exch; the fast-path
        // bug is one missing lock observed from six (pc, kind) pairs.
        2 * usize::from(self.races.block_scope_element_lock)
            + 2 * usize::from(self.races.block_scope_checksum_lock)
            + 6 * usize::from(self.races.unlocked_fast_path)
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let program = self.build_kernel();
        let (av, bv) = self.inputs();
        let a = gpu.mem_mut().alloc_words(self.m * self.k);
        let b = gpu.mem_mut().alloc_words(self.k * self.n);
        let c = gpu.mem_mut().alloc_words(self.elems());
        let locks = gpu.mem_mut().alloc_words(self.elems());
        let sumlock = gpu.mem_mut().alloc_words(1);
        let checksum = gpu.mem_mut().alloc_words(1);
        let block_acc = gpu.mem_mut().alloc_words(self.grid());
        gpu.mem_mut().copy_in(a, &av);
        gpu.mem_mut().copy_in(b, &bv);
        for buf in [c, locks, sumlock, checksum, block_acc] {
            gpu.mem_mut().fill(buf, 0);
        }

        let stats = gpu.launch(
            &program,
            self.grid(),
            self.threads_per_block,
            &[
                a.addr(),
                b.addr(),
                c.addr(),
                locks.addr(),
                sumlock.addr(),
                checksum.addr(),
                block_acc.addr(),
            ],
        )?;

        let output_valid = if self.expected_races() == 0 {
            let (cref, sumref) = self.reference(&av, &bv);
            let got = gpu.mem().copy_out(c);
            let sum = gpu.mem().read_word(checksum.word_addr(0));
            Some(got == cref && sum == sumref)
        } else {
            None // racey runs aren't validated (the fast path loses updates)
        };
        Ok(AppRun::new(stats, 1, output_valid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> MatMul {
        MatMul {
            m: 16,
            k: 32,
            n: 8,
            k_slices: 2,
            threads_per_block: 64,
            ..MatMul::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn racey_config_produces_four_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        // Race budgets are calibrated at the default sizes.
        let app = MatMul::racey();
        app.run(&mut gpu).unwrap();
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            app.expected_races(),
            "{:?}",
            gpu.races().unwrap().unique_races().collect::<Vec<_>>()
        );
    }

    #[test]
    fn each_knob_contributes_expected_races() {
        let cases = [
            (
                MatMulRaces {
                    block_scope_element_lock: true,
                    ..MatMulRaces::default()
                },
                2,
            ),
            (
                MatMulRaces {
                    block_scope_checksum_lock: true,
                    ..MatMulRaces::default()
                },
                2,
            ),
            (
                MatMulRaces {
                    unlocked_fast_path: true,
                    ..MatMulRaces::default()
                },
                6,
            ),
        ];
        for (races, expect) in cases {
            let mut gpu =
                Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
            let app = MatMul {
                races,
                ..MatMul::default()
            };
            app.run(&mut gpu).unwrap();
            assert_eq!(
                gpu.races().unwrap().unique_count(),
                expect,
                "knob {races:?}: {:?}",
                gpu.races().unwrap().records()
            );
        }
    }

    #[test]
    fn unlocked_fast_path_triggers_lockset_violations() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        let app = MatMul {
            races: MatMulRaces {
                unlocked_fast_path: true,
                ..MatMulRaces::default()
            },
            ..small()
        };
        app.run(&mut gpu).unwrap();
        use scord_core::RaceKind;
        let log = gpu.races().unwrap();
        let lockset: usize = log.unique_of_kind(RaceKind::MissingLockStore)
            + log.unique_of_kind(RaceKind::MissingLockLoad);
        assert!(
            lockset >= 1,
            "the fence-only fast path must surface missing-lock races: {:?}",
            log.records()
        );
    }
}
