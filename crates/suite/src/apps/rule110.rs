//! Rule 110 Cellular Automata (R110, Table II).
//!
//! The tape is partitioned among blocks; each thread updates a strided set
//! of cells every generation. After writing, a thread that produced its
//! block's *edge* cells executes a **device** fence (neighbouring blocks
//! will read them); interior cells only need **block** scope. Generations
//! are separated by a neighbourhood synchronization on per-block generation
//! flags (`atomicExch` publish + atomic polls).
//!
//! Injectable races (2 in the canonical configuration): narrowing the
//! right-edge publication fence to block scope breaks *both* directions of
//! the boundary exchange handled by the last warp — the neighbour's read of
//! the freshly-written edge cell (stale read) and the owner's rewrite of a
//! cell the neighbour read last generation (write-after-read) — two unique
//! scoped-fence races. A further knob raises the generation flag with a
//! block-scoped `atomicExch` (a scoped-atomic race on the neighbours'
//! polls), exercised by its own tests.

use scord_core::SplitMix64;

use scord_isa::{AluOp, KernelBuilder, Program, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::common::{neighbor_sync, GridSyncScopes};
use crate::{AppRun, Benchmark};

/// Race-injection knobs for R110.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rule110Races {
    /// Publish the right-edge cell with a block-scope fence (2 unique
    /// races: the stale read and the write-after-read hand-back).
    pub block_scope_edge_fence: bool,
    /// Raise the generation flag with a block-scope `atomicExch` (1 unique
    /// scoped-atomic race; not part of the canonical Table VI budget).
    pub block_scope_generation_flag: bool,
}

/// The Rule 110 benchmark.
#[derive(Debug, Clone)]
pub struct Rule110 {
    /// Tape length (paper: 2.5M; scaled default: 16384).
    pub cells: u32,
    /// Generations simulated.
    pub steps: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Grid blocks (must all be resident: ≤ SMs × blocks/SM).
    pub blocks: u32,
    /// Race knobs.
    pub races: Rule110Races,
    /// Initial-tape seed.
    pub seed: u64,
}

impl Default for Rule110 {
    fn default() -> Self {
        Rule110 {
            cells: 16_384,
            steps: 8,
            threads_per_block: 128,
            blocks: 16,
            races: Rule110Races::default(),
            seed: 0x110,
        }
    }
}

impl Rule110 {
    /// The canonical racey configuration (2 unique races).
    #[must_use]
    pub fn racey() -> Self {
        Rule110 {
            races: Rule110Races {
                block_scope_edge_fence: true,
                block_scope_generation_flag: false,
            },
            ..Self::default()
        }
    }

    fn cells_per_block(&self) -> u32 {
        self.cells / self.blocks
    }

    /// Emits `next = rule110(left, center, right)` given three 0/1 regs.
    fn emit_rule(
        k: &mut KernelBuilder,
        l: scord_isa::Reg,
        c: scord_isa::Reg,
        r: scord_isa::Reg,
    ) -> scord_isa::Reg {
        // pattern = l<<2 | c<<1 | r ; out = (110 >> pattern) & 1
        let l2 = k.alu(AluOp::Shl, l, 2u32);
        let c1 = k.alu(AluOp::Shl, c, 1u32);
        let p0 = k.alu(AluOp::Or, l2, c1);
        let p = k.alu(AluOp::Or, p0, r);
        let shifted = k.alu(AluOp::Shr, 110u32, p);
        k.alu(AluOp::And, shifted, 1u32)
    }

    #[allow(clippy::too_many_lines)]
    fn build_kernel(&self) -> Program {
        let edge_fence = if self.races.block_scope_edge_fence {
            Scope::Block
        } else {
            Scope::Device
        };
        let sync_scopes = GridSyncScopes {
            exch: if self.races.block_scope_generation_flag {
                Scope::Block
            } else {
                Scope::Device
            },
            ..GridSyncScopes::device()
        };
        let cpb = self.cells_per_block();
        let steps = self.steps;

        // params: bufA, bufB, gen
        let mut k = KernelBuilder::new("rule110", 3);
        let buf_a = k.ld_param(0);
        let buf_b = k.ld_param(1);
        let gen = k.ld_param(2);
        let tid = k.special(SpecialReg::Tid);
        let ntid = k.special(SpecialReg::Ntid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let nctaid = k.special(SpecialReg::Nctaid);
        let n = k.mul(nctaid, cpb);
        let seg_start = k.mul(ctaid, cpb);
        let seg_end = k.add(seg_start, cpb);
        let round = k.mov(1u32);

        k.for_range(0u32, steps, 1u32, |k, step| {
            // cur/next buffer selection by step parity.
            let parity = k.rem(step, 2u32);
            let even = k.set_eq(parity, 0u32);
            let cur = k.select(even, buf_a, buf_b);
            let next = k.select(even, buf_b, buf_a);

            let wrote_right_edge = k.mov(0u32);
            let wrote_left_edge = k.mov(0u32);
            let i = k.add(seg_start, tid);
            k.while_loop(
                |k| k.set_lt(i, seg_end),
                |k| {
                    let ca = k.index_addr(cur, i, 4);
                    let c = k.ld_global_strong(ca, 0);
                    // Fixed zero boundary outside the tape.
                    let l = k.mov(0u32);
                    let has_l = k.set_ge(i, 1u32);
                    k.if_then(has_l, |k| {
                        let la = k.index_addr(cur, i, 4);
                        let v = k.ld_global_strong(la, -4);
                        k.mov_into(l, v);
                    });
                    let r = k.mov(0u32);
                    let i1 = k.add(i, 1u32);
                    let has_r = k.set_lt(i1, n);
                    k.if_then(has_r, |k| {
                        let ra = k.index_addr(cur, i, 4);
                        let v = k.ld_global_strong(ra, 4);
                        k.mov_into(r, v);
                    });
                    let out = Self::emit_rule(k, l, c, r);
                    let na = k.index_addr(next, i, 4);
                    k.st_global_strong(na, 0, out);

                    // Track whether this thread produced an edge cell.
                    let last = k.sub(seg_end, 1u32);
                    let is_right = k.set_eq(i, last);
                    k.alu_into(wrote_right_edge, AluOp::Or, wrote_right_edge, is_right);
                    let is_left = k.set_eq(i, seg_start);
                    k.alu_into(wrote_left_edge, AluOp::Or, wrote_left_edge, is_left);
                    k.alu_into(i, AluOp::Add, i, ntid);
                },
            );
            // Edge producers publish with the required scope; the left edge
            // is always correct, the right edge carries the race knob.
            k.if_then(wrote_left_edge, |k| k.fence(Scope::Device));
            k.if_then(wrote_right_edge, |k| k.fence(edge_fence));
            neighbor_sync(k, gen, round, sync_scopes);
            k.alu_into(round, AluOp::Add, round, 1u32);
        });
        k.finish().expect("rule110 kernel is well-formed")
    }

    fn initial_tape(&self) -> Vec<u32> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.cells)
            .map(|_| u32::from(rng.next_bool()))
            .collect()
    }

    /// CPU reference after `steps` generations (zero boundary).
    fn reference(&self, tape: &[u32]) -> Vec<u32> {
        let n = tape.len();
        let mut cur = tape.to_vec();
        let mut next = vec![0u32; n];
        for _ in 0..self.steps {
            for i in 0..n {
                let l = if i > 0 { cur[i - 1] } else { 0 };
                let c = cur[i];
                let r = if i + 1 < n { cur[i + 1] } else { 0 };
                let p = (l << 2) | (c << 1) | r;
                next[i] = (110 >> p) & 1;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

impl Benchmark for Rule110 {
    fn name(&self) -> &'static str {
        "R110"
    }

    fn description(&self) -> &'static str {
        "Rule 110 automaton; edge cells published with device fences, generations via flag sync"
    }

    fn expected_races(&self) -> usize {
        2 * usize::from(self.races.block_scope_edge_fence)
            + usize::from(self.races.block_scope_generation_flag)
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        assert_eq!(self.cells % self.blocks, 0, "cells must split evenly");
        assert!(
            self.cells_per_block()
                .is_multiple_of(self.threads_per_block),
            "threads must stride the segment evenly"
        );
        let program = self.build_kernel();
        let tape = self.initial_tape();
        let a = gpu.mem_mut().alloc_words(self.cells);
        let b = gpu.mem_mut().alloc_words(self.cells);
        let gen = gpu.mem_mut().alloc_words(self.blocks);
        gpu.mem_mut().copy_in(a, &tape);
        gpu.mem_mut().fill(b, 0);
        gpu.mem_mut().fill(gen, 0);

        let stats = gpu.launch(
            &program,
            self.blocks,
            self.threads_per_block,
            &[a.addr(), b.addr(), gen.addr()],
        )?;

        let result_buf = if self.steps.is_multiple_of(2) { a } else { b };
        let got = gpu.mem().copy_out(result_buf);
        let valid = got == self.reference(&tape);
        let output_valid = if self.expected_races() == 0 {
            Some(valid)
        } else {
            None
        };
        Ok(AppRun::new(stats, 1, output_valid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> Rule110 {
        Rule110 {
            cells: 2048,
            steps: 4,
            blocks: 8,
            threads_per_block: 64,
            ..Rule110::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn scoped_flag_knob_produces_one_scoped_atomic_race() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        let app = Rule110 {
            races: Rule110Races {
                block_scope_edge_fence: false,
                block_scope_generation_flag: true,
            },
            ..small()
        };
        app.run(&mut gpu).unwrap();
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            1,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn racey_config_produces_two_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        let app = Rule110 {
            races: Rule110::racey().races,
            ..small()
        };
        app.run(&mut gpu).unwrap();
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            app.expected_races(),
            "{:?}",
            gpu.races().unwrap().records()
        );
    }
}
