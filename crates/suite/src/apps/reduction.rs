//! Reduction (RED, Table II) — the `threadfenceReduction` pattern of the
//! CUDA samples (paper Figure 4).
//!
//! Each block tree-reduces its grid-strided partial sums in a *global*
//! scratch area (barrier-synchronized within the block), then the block
//! leader publishes the block total to `g_odata[ctaid]`, executes a
//! **device** fence, and atomically bumps a completion counter. The leader
//! that observes the last count re-reduces `g_odata` into the final result.
//!
//! Injectable races (2, "scoped-atomics and fences"):
//! * the publication fence at **block** scope — the final reducer's reads of
//!   other blocks' results become a scoped-fence race;
//! * the completion counter bumped with a **block**-scoped atomic — a
//!   scoped-atomic race among the blocks.

use scord_core::SplitMix64;

use scord_isa::{AluOp, KernelBuilder, Program, Scope, SpecialReg};
use scord_sim::{Gpu, SimError};

use crate::{AppRun, Benchmark};

/// Race-injection knobs for RED.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionRaces {
    /// Publish block results with a block-scope fence (1 unique race).
    pub block_scope_result_fence: bool,
    /// Bump the completion counter with a block-scope atomic (1 unique
    /// race).
    pub block_scope_done_counter: bool,
}

/// The reduction benchmark.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Elements to sum (paper: 25.6M; scaled default: 64K).
    pub elements: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Grid blocks.
    pub blocks: u32,
    /// Race knobs.
    pub races: ReductionRaces,
    /// Input seed.
    pub seed: u64,
}

impl Default for Reduction {
    fn default() -> Self {
        Reduction {
            elements: 65_536,
            threads_per_block: 128,
            blocks: 32,
            races: ReductionRaces::default(),
            seed: 0x0ed,
        }
    }
}

impl Reduction {
    /// The canonical racey configuration (2 unique races).
    #[must_use]
    pub fn racey() -> Self {
        Reduction {
            races: ReductionRaces {
                block_scope_result_fence: true,
                block_scope_done_counter: true,
            },
            ..Self::default()
        }
    }

    fn build_kernel(&self) -> Program {
        let fence_scope = if self.races.block_scope_result_fence {
            Scope::Block
        } else {
            Scope::Device
        };
        let counter_scope = if self.races.block_scope_done_counter {
            Scope::Block
        } else {
            Scope::Device
        };

        // params: input, sdata (grid*ntid words), g_odata (grid words),
        //         counter (1 word), output (1 word), n
        let mut k = KernelBuilder::new("reduce", 6);
        let input = k.ld_param(0);
        let sdata = k.ld_param(1);
        let g_odata = k.ld_param(2);
        let counter = k.ld_param(3);
        let output = k.ld_param(4);
        let n = k.ld_param(5);

        let tid = k.special(SpecialReg::Tid);
        let ntid = k.special(SpecialReg::Ntid);
        let ctaid = k.special(SpecialReg::Ctaid);
        let nctaid = k.special(SpecialReg::Nctaid);

        // Grid-strided partial sum.
        let sum = k.mov(0u32);
        let stride = k.mul(ntid, nctaid);
        let i = k.global_tid();
        k.while_loop(
            |k| k.set_lt(i, n),
            |k| {
                let ia = k.index_addr(input, i, 4);
                let x = k.ld_global(ia, 0);
                k.alu_into(sum, AluOp::Add, sum, x);
                k.alu_into(i, AluOp::Add, i, stride);
            },
        );

        // Block-local tree reduction in the global scratch region.
        let base = k.mul(ctaid, ntid);
        let my = k.add(base, tid);
        let sa = k.index_addr(sdata, my, 4);
        k.st_global(sa, 0, sum);
        k.bar();
        let s = k.div(ntid, 2u32);
        k.while_loop(
            |k| k.set_ge(s, 1u32),
            |k| {
                let active = k.set_lt(tid, s);
                k.if_then(active, |k| {
                    let other = k.add(my, s);
                    let oa = k.index_addr(sdata, other, 4);
                    let b = k.ld_global(oa, 0);
                    let a = k.ld_global(sa, 0);
                    let t = k.add(a, b);
                    k.st_global(sa, 0, t);
                });
                k.bar();
                k.alu_into(s, AluOp::Div, s, 2u32);
            },
        );

        // Leader publishes and the last block finishes the job (Fig. 4
        // lines 13-18).
        let leader = k.set_eq(tid, 0u32);
        k.if_then(leader, |k| {
            let block_sum = k.ld_global(sa, 0);
            let ga = k.index_addr(g_odata, ctaid, 4);
            k.st_global_strong(ga, 0, block_sum);
            k.fence(fence_scope);
            let old = k.atom_add(counter, 0, 1u32, counter_scope);
            let last = k.add(old, 1u32);
            let am_last = k.set_eq(last, nctaid);
            k.if_then(am_last, |k| {
                let total = k.mov(0u32);
                k.for_range(0u32, nctaid, 1u32, |k, b| {
                    let ba = k.index_addr(g_odata, b, 4);
                    let x = k.ld_global_strong(ba, 0);
                    k.alu_into(total, AluOp::Add, total, x);
                });
                k.st_global_strong(output, 0, total);
            });
        });
        k.finish().expect("reduction kernel is well-formed")
    }

    fn inputs(&self) -> Vec<u32> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.elements).map(|_| rng.range_u32(0, 1000)).collect()
    }
}

impl Benchmark for Reduction {
    fn name(&self) -> &'static str {
        "RED"
    }

    fn description(&self) -> &'static str {
        "threadfence reduction: block tree-reduce, device-fence publish, last block finishes"
    }

    fn expected_races(&self) -> usize {
        usize::from(self.races.block_scope_result_fence)
            + usize::from(self.races.block_scope_done_counter)
    }

    fn run(&self, gpu: &mut Gpu) -> Result<AppRun, SimError> {
        let program = self.build_kernel();
        let input = self.inputs();
        let inbuf = gpu.mem_mut().alloc_words(self.elements);
        let sdata = gpu
            .mem_mut()
            .alloc_words(self.blocks * self.threads_per_block);
        let g_odata = gpu.mem_mut().alloc_words(self.blocks);
        let counter = gpu.mem_mut().alloc_words(1);
        let output = gpu.mem_mut().alloc_words(1);
        gpu.mem_mut().copy_in(inbuf, &input);
        gpu.mem_mut().fill(counter, 0);

        let stats = gpu.launch(
            &program,
            self.blocks,
            self.threads_per_block,
            &[
                inbuf.addr(),
                sdata.addr(),
                g_odata.addr(),
                counter.addr(),
                output.addr(),
                self.elements,
            ],
        )?;

        let expect: u32 = input.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        let got = gpu.mem().read_word(output.word_addr(0));
        let valid = got == expect;
        let output_valid = if self.expected_races() == 0 {
            Some(valid)
        } else {
            None
        };
        Ok(AppRun::new(stats, 1, output_valid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_sim::{DetectionMode, GpuConfig};

    fn small() -> Reduction {
        Reduction {
            elements: 4096,
            blocks: 8,
            threads_per_block: 64,
            ..Reduction::default()
        }
    }

    #[test]
    fn correct_config_validates_and_is_race_free() {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
        let run = small().run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{:?}",
            gpu.races().unwrap().records()
        );
    }

    #[test]
    fn racey_config_produces_two_unique_races() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        let app = Reduction {
            races: Reduction::racey().races,
            ..small()
        };
        app.run(&mut gpu).unwrap();
        assert_eq!(gpu.races().unwrap().unique_count(), app.expected_races());
    }

    #[test]
    fn each_knob_contributes_one_race() {
        for (knob, races) in [
            (
                ReductionRaces {
                    block_scope_result_fence: true,
                    block_scope_done_counter: false,
                },
                1,
            ),
            (
                ReductionRaces {
                    block_scope_result_fence: false,
                    block_scope_done_counter: true,
                },
                1,
            ),
        ] {
            let mut gpu =
                Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
            let app = Reduction {
                races: knob,
                ..small()
            };
            app.run(&mut gpu).unwrap();
            assert_eq!(
                gpu.races().unwrap().unique_count(),
                races,
                "knob {knob:?}: {:?}",
                gpu.races().unwrap().records()
            );
        }
    }
}
