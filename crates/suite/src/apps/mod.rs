//! The seven ScoR applications (paper Table II).
//!
//! Every application follows the same contract:
//!
//! * a `*_paper_shape()`-style default constructor gives a correctly
//!   synchronized, scaled-down configuration (the paper's inputs are sized
//!   for a hardware-speed simulator; EXPERIMENTS.md records the sizes used
//!   here);
//! * a `races` field holds named knobs, each omitting or narrowing one
//!   synchronization operation exactly as §III-A describes;
//! * `racey()` returns the canonical racey configuration whose unique-race
//!   count matches the paper's Table VI row (MM 4, RED 2, R110 2, GCOL 6,
//!   GCON 5, 1DC 1, UTS 6);
//! * in the correct configuration the GPU output is validated against a CPU
//!   reference; racey configurations skip output validation (races may
//!   legitimately corrupt results) and are assessed by detection instead.

mod convolution;
mod graph_color;
mod graph_conn;
mod matmul;
mod reduction;
mod rule110;
mod uts;

pub use convolution::{Convolution1D, ConvolutionRaces};
pub use graph_color::{GraphColoring, GraphColoringRaces};
pub use graph_conn::{GraphConnectivity, GraphConnectivityRaces};
pub use matmul::{MatMul, MatMulRaces};
pub use reduction::{Reduction, ReductionRaces};
pub use rule110::{Rule110, Rule110Races};
pub use uts::{Uts, UtsRaces};

use crate::Benchmark;

/// The seven applications in their correct configurations.
#[must_use]
pub fn all_apps() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(MatMul::default()),
        Box::new(Reduction::default()),
        Box::new(Rule110::default()),
        Box::new(GraphColoring::default()),
        Box::new(GraphConnectivity::default()),
        Box::new(Convolution1D::default()),
        Box::new(Uts::default()),
    ]
}

/// The seven applications in their canonical racey configurations
/// (26 unique races in total, per Table VI).
#[must_use]
pub fn all_apps_racey() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(MatMul::racey()),
        Box::new(Reduction::racey()),
        Box::new(Rule110::racey()),
        Box::new(GraphColoring::racey()),
        Box::new(GraphConnectivity::racey()),
        Box::new(Convolution1D::racey()),
        Box::new(Uts::racey()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_budget_matches_table6() {
        let total: usize = all_apps_racey().iter().map(|a| a.expected_races()).sum();
        assert_eq!(total, 26, "26 unique application races (paper §I)");
        for a in all_apps() {
            assert_eq!(a.expected_races(), 0, "{} default is clean", a.name());
        }
    }

    #[test]
    fn per_app_budgets() {
        let expect = [
            ("MM", 4),
            ("RED", 2),
            ("R110", 2),
            ("GCOL", 6),
            ("GCON", 5),
            ("1DC", 1),
            ("UTS", 6),
        ];
        for (app, (name, races)) in all_apps_racey().iter().zip(expect) {
            assert_eq!(app.name(), name);
            assert_eq!(app.expected_races(), races, "{name}");
        }
    }
}
