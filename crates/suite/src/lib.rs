//! # scor-suite
//!
//! The **ScoR** (Scoped Race) benchmark suite from *ScoRD: A Scoped Race
//! Detector for GPUs* (ISCA 2020), re-implemented against the `scord-isa`
//! kernel builder and the `scord-sim` GPU simulator.
//!
//! The suite contains (paper §III-B, Tables I and II):
//!
//! * **seven applications** that use scoped synchronization — Matrix
//!   Multiplication ([`apps::MatMul`]), Reduction ([`apps::Reduction`]),
//!   Rule 110 Cellular Automata ([`apps::Rule110`]), Graph Coloring
//!   ([`apps::GraphColoring`]), Graph Connectivity
//!   ([`apps::GraphConnectivity`]), 1-D Convolution
//!   ([`apps::Convolution1D`]) and Unbalanced Tree Search ([`apps::Uts`]).
//!   Each is correctly synchronized by default and carries configuration
//!   knobs that inject the paper's per-application unique races
//!   (MM 4, RED 2, R110 2, GCOL 6, GCON 5, 1DC 1, UTS 6 — 26 in total);
//! * **thirty-two microbenchmarks** ([`micro::all_micros`]) covering fence,
//!   atomic and lock/unlock synchronization at varying scopes — 18 racey and
//!   14 non-racey (Table I);
//! * an **R-MAT graph generator** ([`graphgen`]) standing in for GTgraph.
//!
//! Every application validates its output against a CPU reference in the
//! correctly-synchronized configuration; racey configurations skip output
//! validation (a real race may corrupt results) and are validated by the
//! number of unique races the detector reports.

#![warn(missing_docs)]

pub mod apps;
mod common;
pub mod graphgen;
pub mod micro;
mod runner;

pub use common::GridSyncScopes;
pub use runner::{run_benchmark, AppRun, Benchmark};
