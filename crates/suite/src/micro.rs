//! The ScoR microbenchmarks (paper Table I): 32 two-thread kernels —
//! 18 racey, 14 non-racey — covering fence, atomic and lock/unlock
//! synchronization at varying scopes.
//!
//! Each microbenchmark stages two *actors*: thread 0 of block 0, and either
//! thread 32 of block 0 (same block, different warp) or thread 0 of block 1
//! (different block). A compute delay orders the second actor after the
//! first without introducing synchronization, exactly like the paper's
//! two-thread tests. Non-racey variants must produce **zero** reports (the
//! false-positive check); racey variants must produce at least one.

use scord_isa::{KernelBuilder, LockConfig, Program, Reg, Scope};
use scord_sim::{Gpu, SimError, SimStats};

use crate::common::{delay, is_actor};

/// Microbenchmark family (Table I's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroCategory {
    /// Store→load pairs with fences of varying scope.
    Fence,
    /// Atomic and non-atomic accesses of varying scope.
    Atomics,
    /// Inferred lock/unlock (acquire/release) of varying scope.
    Lock,
}

impl MicroCategory {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MicroCategory::Fence => "Fence",
            MicroCategory::Atomics => "Atomics",
            MicroCategory::Lock => "Lock/unlock",
        }
    }
}

/// One microbenchmark: a compiled two-actor kernel plus its expectation.
#[derive(Debug, Clone)]
pub struct Micro {
    /// Unique name.
    pub name: &'static str,
    /// Family.
    pub category: MicroCategory,
    /// `true` if the kernel contains a race ScoRD must report.
    pub racey: bool,
    program: Program,
}

impl Micro {
    /// The compiled kernel (3 params: data, aux/lock, out).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the microbenchmark on `gpu` (2 blocks × 64 threads).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn run(&self, gpu: &mut Gpu) -> Result<SimStats, SimError> {
        let data = gpu.mem_mut().alloc_words(16);
        let aux = gpu.mem_mut().alloc_words(16);
        let out = gpu.mem_mut().alloc_words(16);
        gpu.launch(&self.program, 2, 64, &[data.addr(), aux.addr(), out.addr()])
    }
}

/// How long the second actor spins on ALU work before acting, in loop
/// iterations. Long enough for the first actor's stores *and* its fence
/// event to drain into the detector.
const ORDER_DELAY: u32 = 1500;

type Body<'a> = &'a dyn Fn(&mut KernelBuilder, Reg, Reg, Reg);

struct Spec<'a> {
    name: &'static str,
    category: MicroCategory,
    racey: bool,
    same_block: bool,
    barrier_between: bool,
    delay_second: bool,
    actor1: Body<'a>,
    actor2: Body<'a>,
}

fn build(spec: &Spec<'_>) -> Micro {
    let mut k = KernelBuilder::new(spec.name, 3);
    let data = k.ld_param(0);
    let aux = k.ld_param(1);
    let out = k.ld_param(2);
    let a1 = is_actor(&mut k, 0, 0);
    k.if_then(a1, |k| (spec.actor1)(k, data, aux, out));
    if spec.barrier_between {
        k.bar();
    }
    let a2 = if spec.same_block {
        is_actor(&mut k, 0, 32)
    } else {
        is_actor(&mut k, 1, 0)
    };
    let delay_second = spec.delay_second;
    k.if_then(a2, |k| {
        if delay_second {
            delay(k, ORDER_DELAY);
        }
        (spec.actor2)(k, data, aux, out);
    });
    k.exit();
    Micro {
        name: spec.name,
        category: spec.category,
        racey: spec.racey,
        program: k.finish().expect("microbenchmark kernels are well-formed"),
    }
}

// ---- actor bodies ----------------------------------------------------------

fn store_volatile(k: &mut KernelBuilder, data: Reg, _aux: Reg, _out: Reg) {
    k.st_global_strong(data, 0, 42u32);
}

fn store_weak(k: &mut KernelBuilder, data: Reg, _aux: Reg, _out: Reg) {
    k.st_global(data, 0, 42u32);
}

fn store_volatile_fence(scope: Scope) -> impl Fn(&mut KernelBuilder, Reg, Reg, Reg) {
    move |k, data, _aux, _out| {
        k.st_global_strong(data, 0, 42u32);
        k.fence(scope);
    }
}

fn load_volatile(k: &mut KernelBuilder, data: Reg, _aux: Reg, out: Reg) {
    let v = k.ld_global_strong(data, 0);
    k.st_global_strong(out, 0, v);
}

fn load_weak(k: &mut KernelBuilder, data: Reg, _aux: Reg, out: Reg) {
    let v = k.ld_global(data, 0);
    k.st_global_strong(out, 4, v);
}

fn atom_add(scope: Scope) -> impl Fn(&mut KernelBuilder, Reg, Reg, Reg) {
    move |k, data, _aux, _out| {
        k.atom_add_noret(data, 0, 5u32, scope);
    }
}

/// Lock-protected increment of `data[0]` using the lock word `aux[0]`.
fn locked_increment(cfg: LockConfig) -> impl Fn(&mut KernelBuilder, Reg, Reg, Reg) {
    move |k, data, aux, _out| {
        k.critical_section(aux, 0, cfg, |k| {
            let v = k.ld_global_strong(data, 0);
            let v1 = k.add(v, 1u32);
            k.st_global_strong(data, 0, v1);
        });
    }
}

/// Lock-protected increment using *weak* accesses inside the critical
/// section.
fn locked_increment_weak(cfg: LockConfig) -> impl Fn(&mut KernelBuilder, Reg, Reg, Reg) {
    move |k, data, aux, _out| {
        k.critical_section(aux, 0, cfg, |k| {
            let v = k.ld_global(data, 0);
            let v1 = k.add(v, 1u32);
            k.st_global(data, 0, v1);
        });
    }
}

/// Update without any lock, but with a polite device fence afterwards — the
/// "forgot the lock, kept the fence" bug the lockset check exists for.
fn unlocked_fenced_increment(k: &mut KernelBuilder, data: Reg, _aux: Reg, _out: Reg) {
    let v = k.ld_global_strong(data, 0);
    let v1 = k.add(v, 1u32);
    k.st_global_strong(data, 0, v1);
    k.fence(Scope::Device);
}

/// Increment under a *different* lock (`aux[4]` instead of `aux[0]`).
fn locked_increment_other_lock(cfg: LockConfig) -> impl Fn(&mut KernelBuilder, Reg, Reg, Reg) {
    move |k, data, aux, _out| {
        k.critical_section(aux, 16, cfg, |k| {
            let v = k.ld_global_strong(data, 0);
            let v1 = k.add(v, 1u32);
            k.st_global_strong(data, 0, v1);
        });
    }
}

/// Nested: take lock aux[0] then aux[8], touch data inside both.
fn nested_locks_increment(k: &mut KernelBuilder, data: Reg, aux: Reg, _out: Reg) {
    let cfg = LockConfig::device();
    k.critical_section(aux, 0, cfg, |k| {
        k.critical_section(aux, 32, cfg, |k| {
            let v = k.ld_global_strong(data, 0);
            let v1 = k.add(v, 1u32);
            k.st_global_strong(data, 0, v1);
        });
    });
}

/// Proper locked read, then an unlocked store after release.
fn locked_read_unlocked_store(k: &mut KernelBuilder, data: Reg, aux: Reg, out: Reg) {
    let cfg = LockConfig::device();
    k.critical_section(aux, 0, cfg, |k| {
        let v = k.ld_global_strong(data, 0);
        k.st_global_strong(out, 8, v);
    });
    k.st_global_strong(data, 0, 9u32); // bug: store escaped the lock
}

/// The full suite of 32 microbenchmarks (Table I): 6 fence (2 racey),
/// 9 atomics (4 racey), 17 lock/unlock (12 racey).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn all_micros() -> Vec<Micro> {
    use MicroCategory::{Atomics, Fence, Lock};
    let mut v = Vec::with_capacity(32);

    // ---- Fence: 4 non-racey, 2 racey -----------------------------------
    for (name, same_block, scope, racey) in [
        ("fence-nr-same-block-cta-fence", true, Scope::Block, false),
        ("fence-nr-same-block-gl-fence", true, Scope::Device, false),
        ("fence-nr-diff-block-gl-fence", false, Scope::Device, false),
        (
            "fence-racey-diff-block-cta-fence",
            false,
            Scope::Block,
            true,
        ),
    ] {
        let writer = store_volatile_fence(scope);
        v.push(build(&Spec {
            name,
            category: Fence,
            racey,
            same_block,
            barrier_between: false,
            delay_second: true,
            actor1: &writer,
            actor2: &load_volatile,
        }));
    }
    v.push(build(&Spec {
        name: "fence-nr-same-block-barrier",
        category: Fence,
        racey: false,
        same_block: true,
        barrier_between: true,
        delay_second: false,
        actor1: &store_weak,
        actor2: &load_weak,
    }));
    v.push(build(&Spec {
        name: "fence-racey-diff-block-missing",
        category: Fence,
        racey: true,
        same_block: false,
        barrier_between: false,
        delay_second: true,
        actor1: &store_volatile,
        actor2: &load_volatile,
    }));

    // ---- Atomics: 5 non-racey, 4 racey ----------------------------------
    let add_dev = atom_add(Scope::Device);
    let add_blk = atom_add(Scope::Block);
    for (name, same_block, a1, a2, racey) in [
        (
            "atom-nr-dev-dev-diff-block",
            false,
            &add_dev as Body<'_>,
            &add_dev as Body<'_>,
            false,
        ),
        (
            "atom-nr-cta-cta-same-block",
            true,
            &add_blk,
            &add_blk,
            false,
        ),
        (
            "atom-nr-dev-dev-same-block",
            true,
            &add_dev,
            &add_dev,
            false,
        ),
        (
            "atom-racey-cta-cta-diff-block",
            false,
            &add_blk,
            &add_blk,
            true,
        ),
        (
            "atom-racey-cta-dev-diff-block",
            false,
            &add_blk,
            &add_dev,
            true,
        ),
    ] {
        v.push(build(&Spec {
            name,
            category: Atomics,
            racey,
            same_block,
            barrier_between: false,
            delay_second: false,
            actor1: a1,
            actor2: a2,
        }));
    }
    for (name, same_block, scope, reader, racey) in [
        (
            "atom-nr-dev-then-volatile-load-diff-block",
            false,
            Scope::Device,
            &load_volatile as Body<'_>,
            false,
        ),
        (
            "atom-nr-cta-then-volatile-load-same-block",
            true,
            Scope::Block,
            &load_volatile as Body<'_>,
            false,
        ),
        (
            "atom-racey-cta-then-volatile-load-diff-block",
            false,
            Scope::Block,
            &load_volatile as Body<'_>,
            true,
        ),
        (
            "atom-racey-dev-then-weak-load-diff-block",
            false,
            Scope::Device,
            &load_weak as Body<'_>,
            true,
        ),
    ] {
        let writer = atom_add(scope);
        v.push(build(&Spec {
            name,
            category: Atomics,
            racey,
            same_block,
            barrier_between: false,
            delay_second: true,
            actor1: &writer,
            actor2: reader,
        }));
    }

    // ---- Lock/unlock: 5 non-racey, 12 racey ------------------------------
    let dev = LockConfig::device();
    let blk = LockConfig::block();
    let dev_inc = locked_increment(dev);
    let blk_inc = locked_increment(blk);

    // Non-racey.
    for (name, same_block) in [
        ("lock-nr-device-diff-block", false),
        ("lock-nr-device-same-block", true),
    ] {
        v.push(build(&Spec {
            name,
            category: Lock,
            racey: false,
            same_block,
            barrier_between: false,
            delay_second: false,
            actor1: &dev_inc,
            actor2: &dev_inc,
        }));
    }
    v.push(build(&Spec {
        name: "lock-nr-block-same-block",
        category: Lock,
        racey: false,
        same_block: true,
        barrier_between: false,
        delay_second: false,
        actor1: &blk_inc,
        actor2: &blk_inc,
    }));
    v.push(build(&Spec {
        name: "lock-nr-nested-device-diff-block",
        category: Lock,
        racey: false,
        same_block: false,
        barrier_between: false,
        delay_second: false,
        actor1: &nested_locks_increment,
        actor2: &nested_locks_increment,
    }));
    // Inner lock of the nested pair vs a plain holder of that same lock.
    let inner_only = locked_increment_other_lock(dev); // lock aux[4]
    let inner_only_b = locked_increment_other_lock(dev);
    v.push(build(&Spec {
        name: "lock-nr-same-inner-lock-diff-block",
        category: Lock,
        racey: false,
        same_block: false,
        barrier_between: false,
        delay_second: false,
        actor1: &inner_only,
        actor2: &inner_only_b,
    }));

    // Racey.
    let racey_lock_pairs: [(&'static str, LockConfig, LockConfig); 8] = [
        ("lock-racey-block-diff-block", blk, blk),
        (
            "lock-racey-cas-block-exch-device",
            LockConfig {
                cas_scope: Scope::Block,
                ..dev
            },
            LockConfig {
                cas_scope: Scope::Block,
                ..dev
            },
        ),
        (
            "lock-racey-cas-device-exch-block",
            LockConfig {
                exch_scope: Scope::Block,
                ..dev
            },
            LockConfig {
                exch_scope: Scope::Block,
                ..dev
            },
        ),
        (
            "lock-racey-missing-acquire-fence-one-side",
            dev,
            LockConfig {
                acquire_fence: None,
                ..dev
            },
        ),
        (
            "lock-racey-missing-release-fence",
            LockConfig {
                release_fence: None,
                ..dev
            },
            LockConfig {
                release_fence: None,
                ..dev
            },
        ),
        (
            "lock-racey-acquire-fence-block-scoped",
            dev,
            LockConfig {
                acquire_fence: Some(Scope::Block),
                ..dev
            },
        ),
        (
            "lock-racey-release-fence-block-scoped",
            LockConfig {
                release_fence: Some(Scope::Block),
                ..dev
            },
            LockConfig {
                release_fence: Some(Scope::Block),
                ..dev
            },
        ),
        (
            "lock-racey-block-lock-device-fences",
            LockConfig {
                cas_scope: Scope::Block,
                exch_scope: Scope::Block,
                ..dev
            },
            LockConfig {
                cas_scope: Scope::Block,
                exch_scope: Scope::Block,
                ..dev
            },
        ),
    ];
    for (name, c1, c2) in racey_lock_pairs {
        let a1 = locked_increment(c1);
        let a2 = locked_increment(c2);
        v.push(build(&Spec {
            name,
            category: Lock,
            racey: true,
            same_block: false,
            barrier_between: false,
            delay_second: false,
            actor1: &a1,
            actor2: &a2,
        }));
    }
    v.push(build(&Spec {
        name: "lock-racey-no-lock-one-side",
        category: Lock,
        racey: true,
        same_block: false,
        barrier_between: false,
        delay_second: false,
        actor1: &dev_inc,
        actor2: &unlocked_fenced_increment,
    }));
    let other_lock = locked_increment_other_lock(dev);
    v.push(build(&Spec {
        name: "lock-racey-different-locks",
        category: Lock,
        racey: true,
        same_block: false,
        barrier_between: false,
        delay_second: false,
        actor1: &dev_inc,
        actor2: &other_lock,
    }));
    let weak_cs = locked_increment_weak(dev);
    v.push(build(&Spec {
        name: "lock-racey-weak-data-in-cs",
        category: Lock,
        racey: true,
        same_block: false,
        barrier_between: false,
        delay_second: false,
        actor1: &weak_cs,
        actor2: &dev_inc,
    }));
    v.push(build(&Spec {
        name: "lock-racey-store-escapes-cs",
        category: Lock,
        racey: true,
        same_block: false,
        barrier_between: false,
        delay_second: true,
        actor1: &dev_inc,
        actor2: &locked_read_unlocked_store,
    }));

    debug_assert_eq!(v.len(), 32);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_table1() {
        let micros = all_micros();
        assert_eq!(micros.len(), 32);
        let count = |cat, racey| {
            micros
                .iter()
                .filter(|m| m.category == cat && m.racey == racey)
                .count()
        };
        assert_eq!(count(MicroCategory::Fence, true), 2);
        assert_eq!(count(MicroCategory::Fence, false), 4);
        assert_eq!(count(MicroCategory::Atomics, true), 4);
        assert_eq!(count(MicroCategory::Atomics, false), 5);
        assert_eq!(count(MicroCategory::Lock, true), 12);
        assert_eq!(count(MicroCategory::Lock, false), 5);
        let racey: usize = micros.iter().filter(|m| m.racey).count();
        assert_eq!(racey, 18, "Table I: 18 racey, 14 non-racey");
    }

    #[test]
    fn names_are_unique() {
        let micros = all_micros();
        let mut names: Vec<_> = micros.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }
}
