//! Race-knob calibration sweep: runs every combination of each
//! application's race-injection knobs under the base (4-byte) detector and
//! prints the unique `(pc, kind)` races observed.
//!
//! The canonical racey configurations (`App::racey()`) and the budgets in
//! `expected_races()` were calibrated from this sweep at the default sizes;
//! rerun it after changing an application's kernel or the simulator's
//! timing parameters.
//!
//! ```text
//! cargo run --release -p scor-suite --example knob_sweep
//! ```

use scor_suite::apps::*;
use scor_suite::Benchmark;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

fn measure(b: &dyn Benchmark) {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
    gpu.set_max_cycles(50_000_000);
    match b.run(&mut gpu) {
        Ok(_) => {
            let log = gpu.races().expect("detection on");
            let mut u: Vec<_> = log.unique_races().collect();
            u.sort_by_key(|(pc, k)| (*pc, format!("{k}")));
            println!("  -> {} {u:?}", log.unique_count());
        }
        Err(e) => println!("  -> ERROR {e}"),
    }
}

fn main() {
    for bits in 0..8u32 {
        let races = MatMulRaces {
            block_scope_element_lock: bits & 1 != 0,
            block_scope_checksum_lock: bits & 2 != 0,
            unlocked_fast_path: bits & 4 != 0,
        };
        print!("MM {bits:03b}:");
        measure(&MatMul {
            races,
            ..MatMul::default()
        });
    }
    for bits in 0..4u32 {
        let races = ReductionRaces {
            block_scope_result_fence: bits & 1 != 0,
            block_scope_done_counter: bits & 2 != 0,
        };
        print!("RED {bits:02b}:");
        measure(&Reduction {
            races,
            ..Reduction::default()
        });
    }
    for bits in 0..4u32 {
        let races = Rule110Races {
            block_scope_edge_fence: bits & 1 != 0,
            block_scope_generation_flag: bits & 2 != 0,
        };
        print!("R110 {bits:02b}:");
        measure(&Rule110 {
            races,
            ..Rule110::default()
        });
    }
    for bits in 0..32u32 {
        let races = GraphColoringRaces {
            block_scope_own_head: bits & 1 != 0,
            block_scope_steal: bits & 2 != 0,
            weak_head_scan: bits & 4 != 0,
            block_scope_color_fence: bits & 8 != 0,
            block_scope_generation_flag: bits & 16 != 0,
        };
        print!("GCOL {bits:05b}:");
        measure(&GraphColoring {
            races,
            ..GraphColoring::default()
        });
    }
    for bits in 0..32u32 {
        let races = GraphConnectivityRaces {
            block_scope_own_head: bits & 1 != 0,
            block_scope_steal: bits & 2 != 0,
            block_scope_min: bits & 4 != 0,
            weak_label_read: bits & 8 != 0,
            block_scope_generation_flag: bits & 16 != 0,
        };
        print!("GCON {bits:05b}:");
        measure(&GraphConnectivity {
            races,
            ..GraphConnectivity::default()
        });
    }
    for bits in 0..2u32 {
        let races = ConvolutionRaces {
            block_scope_boundary: bits & 1 != 0,
        };
        print!("1DC {bits:01b}:");
        measure(&Convolution1D {
            races,
            ..Convolution1D::default()
        });
    }
    for bits in 0..8u32 {
        let races = UtsRaces {
            block_scope_global_lock: bits & 1 != 0,
            block_scope_active_counter: bits & 2 != 0,
            block_scope_result_adds: bits & 4 != 0,
        };
        print!("UTS {bits:03b}:");
        measure(&Uts {
            races,
            ..Uts::default()
        });
    }
}
