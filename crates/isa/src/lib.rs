//! # scord-isa
//!
//! A PTX-like mini instruction set for the ScoRD GPU simulator.
//!
//! The ScoRD paper (ISCA 2020) evaluates its race detector on CUDA 8.0 /
//! PTX 5.0 binaries running in GPGPU-Sim. This crate provides the equivalent
//! substrate for a pure-Rust reproduction: a small, well-defined instruction
//! set with everything the paper's detection machinery observes —
//!
//! * **scoped atomic read-modify-writes** (`atom.{add,exch,cas,...}.{cta,gpu}`),
//! * **scoped memory fences** (`membar.{cta,gl}`),
//! * **barriers** (`bar.sync`),
//! * loads/stores with the **`strong`** (CUDA `volatile`) qualifier, and
//! * **SIMT control flow** with explicit reconvergence points, so a warp-based
//!   simulator can model divergence exactly.
//!
//! Kernels are written against [`KernelBuilder`], which provides *structured*
//! control flow (`if_then`, `if_else`, `while_loop`) and guarantees the
//! reconvergence invariants the simulator's SIMT stack relies on.
//!
//! ```
//! use scord_isa::{KernelBuilder, Operand, Scope, SpecialReg};
//!
//! // A kernel that atomically adds its thread id to a global counter.
//! let mut k = KernelBuilder::new("count", 1);
//! let tid = k.special(SpecialReg::Tid);
//! let ptr = k.ld_param(0);
//! k.atom_add_noret(ptr, 0, Operand::Reg(tid), Scope::Device);
//! k.exit();
//! let program = k.finish().expect("valid kernel");
//! assert!(program.len() > 0);
//! ```

mod builder;
mod disasm;
mod instr;
mod program;
mod reg;
mod scope;

pub use builder::{KernelBuilder, LockConfig};
pub use instr::{AluOp, AtomOp, Instr, MemAddr, Operand, Space, SpecialReg};
pub use program::{Pc, Program, ValidateProgramError};
pub use reg::Reg;
pub use scope::Scope;
