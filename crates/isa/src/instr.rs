//! Instruction definitions.

use crate::{Pc, Reg, Scope};

/// An instruction operand: either a register or a 32-bit immediate.
///
/// Signed immediates are stored as their two's-complement bit pattern; ALU
/// operations that are signed reinterpret the bits as `i32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A 32-bit immediate.
    Imm(u32),
}

impl Operand {
    /// Convenience constructor for a signed immediate.
    #[must_use]
    pub fn imm_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as u32)
    }
}

/// Arithmetic / logic operations on 32-bit values.
///
/// `Set*` comparisons produce `1` or `0`. Operations suffixed `U` are
/// unsigned; the rest of the comparison/division family is signed (`i32`).
/// Division or remainder by zero produces `0` rather than trapping — GPU
/// hardware does not fault on integer division by zero either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// High 32 bits of the signed 64-bit product.
    MulHi,
    /// Signed division (`/0 == 0`).
    Div,
    /// Signed remainder (`%0 == 0`).
    Rem,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// `a == b`.
    SetEq,
    /// `a != b`.
    SetNe,
    /// Signed `a < b`.
    SetLt,
    /// Signed `a <= b`.
    SetLe,
    /// Signed `a > b`.
    SetGt,
    /// Signed `a >= b`.
    SetGe,
    /// Unsigned `a < b`.
    SetLtU,
    /// Unsigned `a >= b`.
    SetGeU,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit words.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let sa = a as i32;
        let sb = b as i32;
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::MulHi => ((i64::from(sa) * i64::from(sb)) >> 32) as u32,
            AluOp::Div => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u32
                }
            }
            AluOp::Rem => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u32
                }
            }
            AluOp::Min => sa.min(sb) as u32,
            AluOp::Max => sa.max(sb) as u32,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::Sra => (sa.wrapping_shr(b & 31)) as u32,
            AluOp::SetEq => u32::from(a == b),
            AluOp::SetNe => u32::from(a != b),
            AluOp::SetLt => u32::from(sa < sb),
            AluOp::SetLe => u32::from(sa <= sb),
            AluOp::SetGt => u32::from(sa > sb),
            AluOp::SetGe => u32::from(sa >= sb),
            AluOp::SetLtU => u32::from(a < b),
            AluOp::SetGeU => u32::from(a >= b),
        }
    }
}

/// Atomic read-modify-write operations (paper §II-B).
///
/// CUDA atomics are *relaxed* — they enforce no ordering — but are inherently
/// *strong*, taking effect at the shared (L2) level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// `atomicAdd`.
    Add,
    /// `atomicExch` — used as the release half of a lock (paper §IV-A).
    Exch,
    /// `atomicCAS` — used as the acquire half of a lock (paper §IV-A).
    Cas,
    /// `atomicMin` (signed).
    Min,
    /// `atomicMax` (signed).
    Max,
    /// `atomicAnd`.
    And,
    /// `atomicOr`.
    Or,
}

impl AtomOp {
    /// Applies the RMW to `old` with operand `val` (and `cmp` for CAS),
    /// returning the new value to store.
    #[must_use]
    pub fn apply(self, old: u32, val: u32, cmp: u32) -> u32 {
        match self {
            AtomOp::Add => old.wrapping_add(val),
            AtomOp::Exch => val,
            AtomOp::Cas => {
                if old == cmp {
                    val
                } else {
                    old
                }
            }
            AtomOp::Min => ((old as i32).min(val as i32)) as u32,
            AtomOp::Max => ((old as i32).max(val as i32)) as u32,
            AtomOp::And => old & val,
            AtomOp::Or => old | val,
        }
    }
}

/// Memory spaces addressable by loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device (global) memory — the space ScoRD monitors for races.
    Global,
    /// Per-threadblock scratchpad (CUDA `__shared__`). Outside ScoRD's scope
    /// (tools like CUDA-Racecheck already cover it, paper §I).
    Shared,
}

/// Special (read-only) per-thread registers, 1-D launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block (`threadIdx.x`).
    Tid,
    /// Threads per block (`blockDim.x`).
    Ntid,
    /// Block index within the grid (`blockIdx.x`).
    Ctaid,
    /// Blocks in the grid (`gridDim.x`).
    Nctaid,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the block.
    WarpId,
}

/// A `base-register + immediate-offset` byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Register holding the base byte address.
    pub base: Reg,
    /// Signed byte offset added to the base.
    pub offset: i32,
}

impl MemAddr {
    /// Creates an address `base + offset`.
    #[must_use]
    pub fn new(base: Reg, offset: i32) -> Self {
        MemAddr { base, offset }
    }

    /// Resolves the byte address given the base register's value.
    #[must_use]
    pub fn resolve(self, base_value: u32) -> u32 {
        base_value.wrapping_add(self.offset as u32)
    }
}

/// A single instruction.
///
/// Control flow carries explicit reconvergence points ([`Instr::Branch`]),
/// letting the simulator implement a classic SIMT reconvergence stack without
/// computing post-dominators; [`crate::KernelBuilder`] emits them correctly
/// for structured code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(a, b)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = special register`.
    Special {
        /// Destination register.
        dst: Reg,
        /// Which special register to read.
        sreg: SpecialReg,
    },
    /// Loads the `index`-th 32-bit kernel parameter.
    LdParam {
        /// Destination register.
        dst: Reg,
        /// Parameter slot.
        index: u16,
    },
    /// Load a 32-bit word.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Byte address (must be 4-byte aligned).
        addr: MemAddr,
        /// Memory space.
        space: Space,
        /// `true` for CUDA-`volatile` ("strong") accesses that bypass
        /// incoherent caches (paper §II-B).
        strong: bool,
    },
    /// Store a 32-bit word.
    St {
        /// Value to store.
        src: Operand,
        /// Byte address (must be 4-byte aligned).
        addr: MemAddr,
        /// Memory space.
        space: Space,
        /// `true` for CUDA-`volatile` ("strong") accesses.
        strong: bool,
    },
    /// Scoped atomic read-modify-write on global memory.
    Atom {
        /// The RMW operation.
        op: AtomOp,
        /// Optional register receiving the old value.
        dst: Option<Reg>,
        /// Byte address (must be 4-byte aligned, global space).
        addr: MemAddr,
        /// RMW operand.
        val: Operand,
        /// Comparison value, CAS only.
        cmp: Operand,
        /// Visibility scope of the operation.
        scope: Scope,
    },
    /// Scoped memory fence (`__threadfence_block` / `__threadfence`).
    Fence {
        /// Visibility scope of the fence.
        scope: Scope,
    },
    /// Block-wide execution barrier (`__syncthreads`). Must be reached by
    /// every warp of the block with all lanes converged.
    Bar,
    /// Conditional, possibly divergent branch.
    ///
    /// Taken lanes jump to `target`; others fall through. `reconv` is the
    /// immediate reconvergence point, which must post-dominate both paths.
    Branch {
        /// Condition register (per-lane).
        cond: Reg,
        /// If `true`, lanes branch when `cond == 0`; else when `cond != 0`.
        if_zero: bool,
        /// Branch target.
        target: Pc,
        /// Reconvergence point.
        reconv: Pc,
    },
    /// Unconditional jump (uniform within the executing frame).
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Thread exit.
    Exit,
    /// No operation.
    Nop,
}

impl Instr {
    /// Returns `true` for instructions that access memory (loads, stores,
    /// atomics) and therefore engage the race detector when global.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. }
        )
    }

    /// Returns `true` for global-space memory instructions.
    #[must_use]
    pub fn is_global_memory(&self) -> bool {
        match self {
            Instr::Ld { space, .. } | Instr::St { space, .. } => *space == Space::Global,
            Instr::Atom { .. } => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_signed_and_unsigned_compare() {
        let neg1 = (-1i32) as u32;
        assert_eq!(AluOp::SetLt.eval(neg1, 0), 1, "signed -1 < 0");
        assert_eq!(AluOp::SetLtU.eval(neg1, 0), 0, "unsigned MAX !< 0");
        assert_eq!(AluOp::SetGeU.eval(neg1, 0), 1);
    }

    #[test]
    fn alu_division_by_zero_is_zero() {
        assert_eq!(AluOp::Div.eval(10, 0), 0);
        assert_eq!(AluOp::Rem.eval(10, 0), 0);
    }

    #[test]
    fn alu_wrapping() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Mul.eval(1 << 31, 2), 0);
        assert_eq!(AluOp::MulHi.eval((-1i32) as u32, 2), u32::MAX);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Shl.eval(1, 33), 2, "shift masked to 5 bits");
        assert_eq!(AluOp::Sra.eval((-8i32) as u32, 1), (-4i32) as u32);
        assert_eq!(AluOp::Shr.eval((-8i32) as u32, 1), 0x7FFF_FFFC);
    }

    #[test]
    fn alu_minmax_signed() {
        assert_eq!(AluOp::Min.eval((-5i32) as u32, 3), (-5i32) as u32);
        assert_eq!(AluOp::Max.eval((-5i32) as u32, 3), 3);
    }

    #[test]
    fn atom_cas_semantics() {
        assert_eq!(AtomOp::Cas.apply(0, 1, 0), 1, "matches: swap in");
        assert_eq!(AtomOp::Cas.apply(7, 1, 0), 7, "mismatch: unchanged");
    }

    #[test]
    fn atom_rmw_semantics() {
        assert_eq!(AtomOp::Add.apply(5, 3, 0), 8);
        assert_eq!(AtomOp::Exch.apply(5, 3, 0), 3);
        assert_eq!(AtomOp::Min.apply((-1i32) as u32, 0, 0), (-1i32) as u32);
        assert_eq!(AtomOp::Max.apply((-1i32) as u32, 0, 0), 0);
        assert_eq!(AtomOp::And.apply(0b1100, 0b1010, 0), 0b1000);
        assert_eq!(AtomOp::Or.apply(0b1100, 0b1010, 0), 0b1110);
    }

    #[test]
    fn memaddr_resolution_wraps() {
        let a = MemAddr::new(Reg(0), -4);
        assert_eq!(a.resolve(8), 4);
        assert_eq!(MemAddr::new(Reg(0), 4).resolve(u32::MAX - 3), 0);
    }

    #[test]
    fn instr_memory_classification() {
        let ld = Instr::Ld {
            dst: Reg(0),
            addr: MemAddr::new(Reg(1), 0),
            space: Space::Global,
            strong: false,
        };
        assert!(ld.is_memory());
        assert!(ld.is_global_memory());
        let shared = Instr::St {
            src: Operand::Imm(0),
            addr: MemAddr::new(Reg(1), 0),
            space: Space::Shared,
            strong: false,
        };
        assert!(shared.is_memory());
        assert!(!shared.is_global_memory());
        assert!(!Instr::Bar.is_memory());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(1)), Operand::Reg(Reg(1)));
        assert_eq!(Operand::from(5u32), Operand::Imm(5));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
        assert_eq!(Operand::imm_i32(-2), Operand::Imm(u32::MAX - 1));
    }
}
