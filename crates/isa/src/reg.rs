//! Virtual register identifiers.

use std::fmt;

/// A per-thread 32-bit virtual register.
///
/// Registers are allocated by [`crate::KernelBuilder::reg`]; a kernel declares
/// how many it uses via [`crate::Program::num_regs`], which the simulator's
/// occupancy calculation consumes (registers per SM are a limited resource,
/// Table V: 32768 per SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u16);

impl Reg {
    /// The register's index within the thread's register file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_ptx_like() {
        assert_eq!(Reg(7).to_string(), "%r7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(Reg(42).index(), 42);
        assert_eq!(usize::from(Reg(3)), 3);
    }
}
