//! PTX-flavoured disassembly (`Display` impls).

use std::fmt;

use crate::{AluOp, AtomOp, Instr, MemAddr, Operand, Program, Space, SpecialReg};

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v > 0x7FFF_FFFF {
                    write!(f, "{}", *v as i32)
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul.lo",
            AluOp::MulHi => "mul.hi",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::SetEq => "setp.eq",
            AluOp::SetNe => "setp.ne",
            AluOp::SetLt => "setp.lt",
            AluOp::SetLe => "setp.le",
            AluOp::SetGt => "setp.gt",
            AluOp::SetGe => "setp.ge",
            AluOp::SetLtU => "setp.lt.u",
            AluOp::SetGeU => "setp.ge.u",
        };
        f.write_str(s)
    }
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Add => "add",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::And => "and",
            AtomOp::Or => "or",
        };
        f.write_str(s)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::Tid => "%tid.x",
            SpecialReg::Ntid => "%ntid.x",
            SpecialReg::Ctaid => "%ctaid.x",
            SpecialReg::Nctaid => "%nctaid.x",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{}{:+}]", self.base, self.offset)
        }
    }
}

fn space_prefix(space: Space) -> &'static str {
    match space {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::Special { dst, sreg } => write!(f, "mov {dst}, {sreg}"),
            Instr::LdParam { dst, index } => write!(f, "ld.param {dst}, [param{index}]"),
            Instr::Ld {
                dst,
                addr,
                space,
                strong,
            } => {
                let v = if *strong { ".volatile" } else { "" };
                write!(f, "ld.{}{v} {dst}, {addr}", space_prefix(*space))
            }
            Instr::St {
                src,
                addr,
                space,
                strong,
            } => {
                let v = if *strong { ".volatile" } else { "" };
                write!(f, "st.{}{v} {addr}, {src}", space_prefix(*space))
            }
            Instr::Atom {
                op,
                dst,
                addr,
                val,
                cmp,
                scope,
            } => {
                match dst {
                    Some(d) => write!(f, "atom.{}.{op} {d}, {addr}, ", scope.ptx_suffix())?,
                    None => write!(f, "red.{}.{op} {addr}, ", scope.ptx_suffix())?,
                }
                if *op == AtomOp::Cas {
                    write!(f, "{cmp}, {val}")
                } else {
                    write!(f, "{val}")
                }
            }
            Instr::Fence { scope } => match scope {
                crate::Scope::Block => write!(f, "membar.cta"),
                crate::Scope::Device => write!(f, "membar.gl"),
            },
            Instr::Bar => write!(f, "bar.sync 0"),
            Instr::Branch {
                cond,
                if_zero,
                target,
                reconv,
            } => {
                let p = if *if_zero { "@!" } else { "@" };
                write!(f, "{p}{cond} bra L{target} (reconv L{reconv})")
            }
            Instr::Jump { target } => write!(f, "bra L{target}"),
            Instr::Exit => write!(f, "exit"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ".kernel {} (regs={}, params={}, shared={}B)",
            self.name(),
            self.num_regs(),
            self.num_params(),
            self.shared_bytes()
        )?;
        for (pc, ins) in self.instrs().iter().enumerate() {
            writeln!(f, "L{pc:<4} {ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Scope};

    #[test]
    fn disassembles_scoped_operations() {
        let mut k = KernelBuilder::new("d", 1);
        let p0 = k.ld_param(0);
        k.atom_cas(p0, 0, 0u32, 1u32, Scope::Block);
        k.fence(Scope::Device);
        k.atom_exch_noret(p0, 0, 0u32, Scope::Device);
        let p = k.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("atom.cta.cas"), "{text}");
        assert!(text.contains("membar.gl"), "{text}");
        assert!(text.contains("red.gpu.exch"), "{text}");
    }

    #[test]
    fn disassembles_volatile_and_branches() {
        let mut k = KernelBuilder::new("d", 1);
        let p0 = k.ld_param(0);
        let c = k.ld_global_strong(p0, 4);
        k.if_then(c, |k| k.st_global(p0, 8, 3u32));
        let p = k.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("ld.global.volatile"), "{text}");
        assert!(text.contains("bra"), "{text}");
        assert!(text.contains("st.global"), "{text}");
    }

    #[test]
    fn negative_immediates_display_signed() {
        assert_eq!(Operand::Imm(u32::MAX).to_string(), "-1");
        assert_eq!(Operand::Imm(5).to_string(), "5");
    }
}
