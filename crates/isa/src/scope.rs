//! Synchronization scopes.

use std::fmt;

/// The scope of a synchronization operation (atomic or fence).
///
/// A scope identifies the subset of concurrent threads guaranteed to observe
/// the effect of the operation (paper §II-B). CUDA exposes *block*, *device*
/// and *system* scopes; the paper ignores *system* scope without loss of
/// generality, and so does this reproduction.
///
/// `Scope` is ordered by inclusiveness: `Block < Device`.
///
/// ```
/// use scord_isa::Scope;
/// assert!(Scope::Block < Scope::Device);
/// assert!(Scope::Device.includes(Scope::Block));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// `cta` scope: only threads in the same threadblock are guaranteed to
    /// observe the effect.
    Block,
    /// `gpu` scope: all threads of the kernel running on the device observe
    /// the effect.
    Device,
}

impl Scope {
    /// Returns `true` if an operation at `self` scope is guaranteed visible
    /// to everything an operation at `other` scope is visible to.
    #[must_use]
    pub fn includes(self, other: Scope) -> bool {
        self >= other
    }

    /// PTX-style suffix for disassembly (`cta` / `gpu`).
    #[must_use]
    pub fn ptx_suffix(self) -> &'static str {
        match self {
            Scope::Block => "cta",
            Scope::Device => "gpu",
        }
    }
}

impl Default for Scope {
    /// CUDA atomics default to device scope.
    fn default() -> Self {
        Scope::Device
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Block => "block",
            Scope::Device => "device",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_inclusion() {
        assert!(Scope::Device.includes(Scope::Device));
        assert!(Scope::Device.includes(Scope::Block));
        assert!(Scope::Block.includes(Scope::Block));
        assert!(!Scope::Block.includes(Scope::Device));
    }

    #[test]
    fn default_is_device() {
        assert_eq!(Scope::default(), Scope::Device);
    }

    #[test]
    fn display_and_suffix() {
        assert_eq!(Scope::Block.to_string(), "block");
        assert_eq!(Scope::Device.to_string(), "device");
        assert_eq!(Scope::Block.ptx_suffix(), "cta");
        assert_eq!(Scope::Device.ptx_suffix(), "gpu");
    }
}
