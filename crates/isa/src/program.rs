//! Compiled kernels.

use std::error::Error;
use std::fmt;

use crate::{Instr, Space};

/// A program counter: an index into a [`Program`]'s instruction list.
pub type Pc = u32;

/// A validated, executable kernel.
///
/// Produced by [`crate::KernelBuilder::finish`]. Instructions are addressed
/// by [`Pc`] starting at 0; execution ends at [`Instr::Exit`] or by falling
/// off the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
    num_regs: u16,
    num_params: u16,
    shared_bytes: u32,
}

impl Program {
    /// Assembles a program from raw parts, validating control flow targets,
    /// register indices and parameter slots.
    ///
    /// Most users should prefer [`crate::KernelBuilder`], which additionally
    /// guarantees well-formed reconvergence structure.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] describing the first malformed
    /// instruction found.
    pub fn from_parts(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        num_regs: u16,
        num_params: u16,
        shared_bytes: u32,
    ) -> Result<Self, ValidateProgramError> {
        let p = Program {
            name: name.into(),
            instrs,
            num_regs,
            num_params,
            shared_bytes,
        };
        p.validate()?;
        Ok(p)
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch(&self, pc: Pc) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// All instructions in program order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Registers required per thread.
    #[must_use]
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Number of 32-bit kernel parameters expected at launch.
    #[must_use]
    pub fn num_params(&self) -> u16 {
        self.num_params
    }

    /// Bytes of per-block scratchpad (shared) memory required.
    #[must_use]
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    fn validate(&self) -> Result<(), ValidateProgramError> {
        let n = self.instrs.len() as u32;
        let check_reg = |pc: usize, r: crate::Reg| -> Result<(), ValidateProgramError> {
            if r.0 >= self.num_regs {
                Err(ValidateProgramError::RegisterOutOfRange {
                    pc: pc as Pc,
                    reg: r.0,
                    num_regs: self.num_regs,
                })
            } else {
                Ok(())
            }
        };
        let check_op = |pc: usize, o: crate::Operand| match o {
            crate::Operand::Reg(r) => check_reg(pc, r),
            crate::Operand::Imm(_) => Ok(()),
        };
        for (pc, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::Mov { dst, src } => {
                    check_reg(pc, dst)?;
                    check_op(pc, src)?;
                }
                Instr::Alu { dst, a, b, .. } => {
                    check_reg(pc, dst)?;
                    check_op(pc, a)?;
                    check_op(pc, b)?;
                }
                Instr::Special { dst, .. } => check_reg(pc, dst)?,
                Instr::LdParam { dst, index } => {
                    check_reg(pc, dst)?;
                    if index >= self.num_params {
                        return Err(ValidateProgramError::ParamOutOfRange {
                            pc: pc as Pc,
                            index,
                            num_params: self.num_params,
                        });
                    }
                }
                Instr::Ld { dst, addr, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, addr.base)?;
                }
                Instr::St { src, addr, .. } => {
                    check_op(pc, src)?;
                    check_reg(pc, addr.base)?;
                }
                Instr::Atom {
                    dst,
                    addr,
                    val,
                    cmp,
                    ..
                } => {
                    if let Some(d) = dst {
                        check_reg(pc, d)?;
                    }
                    check_reg(pc, addr.base)?;
                    check_op(pc, val)?;
                    check_op(pc, cmp)?;
                }
                Instr::Branch {
                    cond,
                    target,
                    reconv,
                    ..
                } => {
                    check_reg(pc, cond)?;
                    for t in [target, reconv] {
                        if t > n {
                            return Err(ValidateProgramError::BranchOutOfRange {
                                pc: pc as Pc,
                                target: t,
                                len: n,
                            });
                        }
                    }
                }
                Instr::Jump { target } => {
                    if target > n {
                        return Err(ValidateProgramError::BranchOutOfRange {
                            pc: pc as Pc,
                            target,
                            len: n,
                        });
                    }
                }
                Instr::Fence { .. } | Instr::Bar | Instr::Exit | Instr::Nop => {}
            }
        }
        Ok(())
    }

    /// Counts instructions matching a predicate — convenient for tests and
    /// for locating static instructions by kind.
    pub fn count_matching(&self, pred: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Returns the PCs of all global-space memory instructions.
    #[must_use]
    pub fn global_memory_pcs(&self) -> Vec<Pc> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_global_memory())
            .map(|(pc, _)| pc as Pc)
            .collect()
    }

    /// Returns `true` if the program touches shared memory.
    #[must_use]
    pub fn uses_shared(&self) -> bool {
        self.instrs.iter().any(|i| match i {
            Instr::Ld { space, .. } | Instr::St { space, .. } => *space == Space::Shared,
            _ => false,
        })
    }
}

/// Error returned when assembling an ill-formed [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// An instruction names a register outside the declared register count.
    RegisterOutOfRange {
        /// Offending instruction.
        pc: Pc,
        /// The register index used.
        reg: u16,
        /// The declared register count.
        num_regs: u16,
    },
    /// A `LdParam` names a parameter outside the declared parameter count.
    ParamOutOfRange {
        /// Offending instruction.
        pc: Pc,
        /// The parameter slot used.
        index: u16,
        /// The declared parameter count.
        num_params: u16,
    },
    /// A branch or jump targets past the end of the program.
    BranchOutOfRange {
        /// Offending instruction.
        pc: Pc,
        /// The out-of-range target.
        target: Pc,
        /// Program length.
        len: u32,
    },
    /// The builder finished with unclosed structured control flow.
    UnclosedControlFlow {
        /// How many structures remained open.
        open: usize,
    },
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::RegisterOutOfRange { pc, reg, num_regs } => write!(
                f,
                "instruction {pc} uses register %r{reg} but only {num_regs} are declared"
            ),
            ValidateProgramError::ParamOutOfRange {
                pc,
                index,
                num_params,
            } => write!(
                f,
                "instruction {pc} loads parameter {index} but only {num_params} are declared"
            ),
            ValidateProgramError::BranchOutOfRange { pc, target, len } => write!(
                f,
                "instruction {pc} targets pc {target} beyond program length {len}"
            ),
            ValidateProgramError::UnclosedControlFlow { open } => {
                write!(f, "kernel finished with {open} unclosed control structures")
            }
        }
    }
}

impl Error for ValidateProgramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, MemAddr, Operand, Reg};

    #[test]
    fn rejects_register_out_of_range() {
        let err = Program::from_parts(
            "bad",
            vec![Instr::Mov {
                dst: Reg(4),
                src: Operand::Imm(0),
            }],
            4,
            0,
            0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateProgramError::RegisterOutOfRange { reg: 4, .. }
        ));
    }

    #[test]
    fn rejects_param_out_of_range() {
        let err = Program::from_parts(
            "bad",
            vec![Instr::LdParam {
                dst: Reg(0),
                index: 1,
            }],
            1,
            1,
            0,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateProgramError::ParamOutOfRange { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let err = Program::from_parts("bad", vec![Instr::Jump { target: 5 }], 1, 0, 0).unwrap_err();
        assert!(matches!(
            err,
            ValidateProgramError::BranchOutOfRange { target: 5, .. }
        ));
    }

    #[test]
    fn accepts_valid_program_and_reports_shape() {
        let p = Program::from_parts(
            "ok",
            vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: Reg(0),
                    a: Operand::Imm(1),
                    b: Operand::Imm(2),
                },
                Instr::Ld {
                    dst: Reg(1),
                    addr: MemAddr::new(Reg(0), 0),
                    space: Space::Global,
                    strong: true,
                },
                Instr::Exit,
            ],
            2,
            0,
            16,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.global_memory_pcs(), vec![1]);
        assert_eq!(p.shared_bytes(), 16);
        assert!(!p.uses_shared());
        assert!(p.fetch(3).is_none());
    }

    #[test]
    fn error_display_is_informative() {
        let err = ValidateProgramError::BranchOutOfRange {
            pc: 1,
            target: 9,
            len: 4,
        };
        assert!(err.to_string().contains("beyond program length"));
    }
}
