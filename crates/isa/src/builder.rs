//! Structured kernel construction.

use crate::{AluOp, AtomOp, Instr, MemAddr, Operand, Pc, Program, Reg, Scope, Space, SpecialReg};

/// Scope configuration of a lock/unlock (acquire/release) pattern.
///
/// Per the paper (§III, Figure 5), CUDA locks are synthesized from an
/// `atomicCAS` followed by a fence (acquire) and a fence followed by an
/// `atomicExch` (release). The effective scope of the lock is the *narrowest*
/// scope of its constituents, and omitting a fence breaks the pattern
/// entirely — both are race-injection knobs in the ScoR suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// Scope of the acquiring `atomicCAS`.
    pub cas_scope: Scope,
    /// Scope of the fence completing the acquire, or `None` to (incorrectly)
    /// omit it.
    pub acquire_fence: Option<Scope>,
    /// Scope of the fence starting the release, or `None` to (incorrectly)
    /// omit it.
    pub release_fence: Option<Scope>,
    /// Scope of the releasing `atomicExch`.
    pub exch_scope: Scope,
}

impl LockConfig {
    /// A correctly-formed lock at uniform `scope`.
    #[must_use]
    pub fn scoped(scope: Scope) -> Self {
        LockConfig {
            cas_scope: scope,
            acquire_fence: Some(scope),
            release_fence: Some(scope),
            exch_scope: scope,
        }
    }

    /// A correct device-scope lock.
    #[must_use]
    pub fn device() -> Self {
        Self::scoped(Scope::Device)
    }

    /// A correct block-scope lock (only safe if every contender is in the
    /// same threadblock).
    #[must_use]
    pub fn block() -> Self {
        Self::scoped(Scope::Block)
    }
}

/// Incrementally builds a [`Program`] with structured control flow.
///
/// The builder emits explicit reconvergence points on every divergent branch,
/// maintaining the invariant the simulator's SIMT stack relies on: the
/// reconvergence PC of a divergent region is always the PC at which the
/// parent stack frame waits.
///
/// ```
/// use scord_isa::{KernelBuilder, Operand, SpecialReg};
///
/// // out[tid] = tid < n ? tid * 2 : 0
/// let mut k = KernelBuilder::new("double", 2);
/// let out = k.ld_param(0);
/// let n = k.ld_param(1);
/// let tid = k.special(SpecialReg::Tid);
/// let in_range = k.set_lt(tid, n);
/// let addr = k.index_addr(out, tid, 4);
/// k.if_else(
///     in_range,
///     |k| {
///         let v = k.mul(tid, 2u32);
///         k.st_global(addr, 0, v);
///     },
///     |k| k.st_global(addr, 0, 0u32),
/// );
/// k.exit();
/// let program = k.finish().unwrap();
/// assert!(program.len() > 5);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: u16,
    num_params: u16,
    shared_bytes: u32,
}

impl KernelBuilder {
    /// Starts a kernel named `name` taking `num_params` 32-bit parameters.
    #[must_use]
    pub fn new(name: impl Into<String>, num_params: u16) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            num_params,
            shared_bytes: 0,
        }
    }

    /// Reserves `bytes` of per-block scratchpad (shared) memory, returning
    /// the byte offset of the reservation.
    pub fn alloc_shared(&mut self, bytes: u32) -> u32 {
        let off = self.shared_bytes;
        self.shared_bytes += (bytes + 3) & !3;
        off
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register file exhausted");
        r
    }

    /// Current emission point.
    #[must_use]
    pub fn here(&self) -> Pc {
        self.instrs.len() as Pc
    }

    /// Appends a raw instruction. Prefer the typed emitters below.
    pub fn emit(&mut self, instr: Instr) -> Pc {
        let pc = self.here();
        self.instrs.push(instr);
        pc
    }

    // ---- straight-line emitters ------------------------------------------

    /// `dst = src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.mov_into(dst, src);
        dst
    }

    /// `dst = src` into an existing register.
    pub fn mov_into(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `op(a, b)` into a fresh register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.alu_into(dst, op, a, b);
        dst
    }

    /// `dst = op(a, b)` into an existing register.
    pub fn alu_into(&mut self, dst: Reg, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Instr::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Reads a special register into a fresh register.
    pub fn special(&mut self, sreg: SpecialReg) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Special { dst, sreg });
        dst
    }

    /// Loads the `index`-th kernel parameter into a fresh register.
    pub fn ld_param(&mut self, index: u16) -> Reg {
        let dst = self.reg();
        self.emit(Instr::LdParam { dst, index });
        dst
    }

    /// Computes `tid + ctaid * ntid` — the global thread index.
    pub fn global_tid(&mut self) -> Reg {
        let tid = self.special(SpecialReg::Tid);
        let ctaid = self.special(SpecialReg::Ctaid);
        let ntid = self.special(SpecialReg::Ntid);
        let base = self.mul(ctaid, ntid);
        self.add(base, tid)
    }

    /// Computes `base + index * elem_size` (a byte address) into a fresh
    /// register.
    pub fn index_addr(&mut self, base: Reg, index: impl Into<Operand>, elem_size: u32) -> Reg {
        let scaled = self.alu(AluOp::Mul, index, elem_size);
        self.alu(AluOp::Add, base, scaled)
    }

    /// Branch-free select: `cond != 0 ? a : b` (cond must be 0 or 1).
    pub fn select(&mut self, cond: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let b = b.into();
        let mask = self.alu(AluOp::Sub, 0u32, cond); // 0 or 0xFFFF_FFFF
        let diff = self.alu(AluOp::Xor, a, b);
        let masked = self.alu(AluOp::And, diff, mask);
        self.alu(AluOp::Xor, b, masked)
    }

    // ---- memory ----------------------------------------------------------

    /// Weak (cacheable) global load.
    pub fn ld_global(&mut self, base: Reg, offset: i32) -> Reg {
        self.ld(base, offset, Space::Global, false)
    }

    /// Strong (CUDA `volatile`) global load, bypassing incoherent caches.
    pub fn ld_global_strong(&mut self, base: Reg, offset: i32) -> Reg {
        self.ld(base, offset, Space::Global, true)
    }

    /// Weak global store.
    pub fn st_global(&mut self, base: Reg, offset: i32, src: impl Into<Operand>) {
        self.st(base, offset, src, Space::Global, false);
    }

    /// Strong (CUDA `volatile`) global store.
    pub fn st_global_strong(&mut self, base: Reg, offset: i32, src: impl Into<Operand>) {
        self.st(base, offset, src, Space::Global, true);
    }

    /// Shared-memory load (scratchpad offsets are relative to the block's
    /// allocation).
    pub fn ld_shared(&mut self, base: Reg, offset: i32) -> Reg {
        self.ld(base, offset, Space::Shared, true)
    }

    /// Shared-memory store.
    pub fn st_shared(&mut self, base: Reg, offset: i32, src: impl Into<Operand>) {
        self.st(base, offset, src, Space::Shared, true);
    }

    fn ld(&mut self, base: Reg, offset: i32, space: Space, strong: bool) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Ld {
            dst,
            addr: MemAddr::new(base, offset),
            space,
            strong,
        });
        dst
    }

    fn st(&mut self, base: Reg, offset: i32, src: impl Into<Operand>, space: Space, strong: bool) {
        self.emit(Instr::St {
            src: src.into(),
            addr: MemAddr::new(base, offset),
            space,
            strong,
        });
    }

    /// Generic scoped atomic; returns the register holding the old value.
    pub fn atom(
        &mut self,
        op: AtomOp,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        cmp: impl Into<Operand>,
        scope: Scope,
    ) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Atom {
            op,
            dst: Some(dst),
            addr: MemAddr::new(base, offset),
            val: val.into(),
            cmp: cmp.into(),
            scope,
        });
        dst
    }

    /// Scoped atomic whose old value is discarded.
    pub fn atom_noret(
        &mut self,
        op: AtomOp,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        scope: Scope,
    ) {
        self.emit(Instr::Atom {
            op,
            dst: None,
            addr: MemAddr::new(base, offset),
            val: val.into(),
            cmp: Operand::Imm(0),
            scope,
        });
    }

    /// `atomicAdd` returning the old value.
    pub fn atom_add(
        &mut self,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        scope: Scope,
    ) -> Reg {
        self.atom(AtomOp::Add, base, offset, val, 0u32, scope)
    }

    /// `atomicAdd` discarding the old value.
    pub fn atom_add_noret(
        &mut self,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        scope: Scope,
    ) {
        self.atom_noret(AtomOp::Add, base, offset, val, scope);
    }

    /// `atomicCAS(addr, cmp, val)` returning the old value.
    pub fn atom_cas(
        &mut self,
        base: Reg,
        offset: i32,
        cmp: impl Into<Operand>,
        val: impl Into<Operand>,
        scope: Scope,
    ) -> Reg {
        self.atom(AtomOp::Cas, base, offset, val, cmp, scope)
    }

    /// `atomicExch(addr, val)` returning the old value.
    pub fn atom_exch(
        &mut self,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        scope: Scope,
    ) -> Reg {
        self.atom(AtomOp::Exch, base, offset, val, 0u32, scope)
    }

    /// `atomicExch(addr, val)` discarding the old value (the release half of
    /// a lock).
    pub fn atom_exch_noret(
        &mut self,
        base: Reg,
        offset: i32,
        val: impl Into<Operand>,
        scope: Scope,
    ) {
        self.atom_noret(AtomOp::Exch, base, offset, val, scope);
    }

    /// Atomic read: `atomicAdd(addr, 0)` returning the current value — the
    /// race-free way to observe a location updated by atomics.
    pub fn atom_read(&mut self, base: Reg, offset: i32, scope: Scope) -> Reg {
        self.atom(AtomOp::Add, base, offset, 0u32, 0u32, scope)
    }

    /// Scoped memory fence.
    pub fn fence(&mut self, scope: Scope) {
        self.emit(Instr::Fence { scope });
    }

    /// Block-wide barrier (`__syncthreads`).
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    // ---- structured control flow ----------------------------------------

    /// Executes `body` for lanes where `cond != 0`.
    pub fn if_then(&mut self, cond: Reg, body: impl FnOnce(&mut Self)) {
        let bpc = self.emit(Instr::Nop); // patched below
        body(self);
        let end = self.here();
        self.instrs[bpc as usize] = Instr::Branch {
            cond,
            if_zero: true,
            target: end,
            reconv: end,
        };
    }

    /// Executes `body` for lanes where `cond == 0`.
    pub fn if_zero(&mut self, cond: Reg, body: impl FnOnce(&mut Self)) {
        let bpc = self.emit(Instr::Nop);
        body(self);
        let end = self.here();
        self.instrs[bpc as usize] = Instr::Branch {
            cond,
            if_zero: false,
            target: end,
            reconv: end,
        };
    }

    /// Executes `then_body` where `cond != 0`, otherwise `else_body`.
    pub fn if_else(
        &mut self,
        cond: Reg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let bpc = self.emit(Instr::Nop);
        then_body(self);
        let jpc = self.emit(Instr::Nop);
        let else_start = self.here();
        else_body(self);
        let end = self.here();
        self.instrs[bpc as usize] = Instr::Branch {
            cond,
            if_zero: true,
            target: else_start,
            reconv: end,
        };
        self.instrs[jpc as usize] = Instr::Jump { target: end };
    }

    /// Loops while the register returned by `cond` is non-zero.
    ///
    /// `cond` is re-evaluated before each iteration; lanes leave the loop as
    /// their condition turns zero and reconverge at the exit.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) {
        let loop_start = self.here();
        let c = cond(self);
        let bpc = self.emit(Instr::Nop);
        body(self);
        self.emit(Instr::Jump { target: loop_start });
        let exit = self.here();
        self.instrs[bpc as usize] = Instr::Branch {
            cond: c,
            if_zero: true,
            target: exit,
            reconv: exit,
        };
    }

    /// Counted loop: `for (i = start; i < end; i += step) body(i)`.
    ///
    /// The bound comparison is signed.
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let end = end.into();
        let step = step.into();
        let i = self.mov(start);
        self.while_loop(
            |k| k.alu(AluOp::SetLt, i, end),
            |k| {
                body(k, i);
                k.alu_into(i, AluOp::Add, i, step);
            },
        );
    }

    /// Spins (with strong loads) until `*(base+offset) == value`.
    ///
    /// Note: a *volatile* poll is visible but unordered; under ScoRD's
    /// happens-before check a volatile flag handshake is only race-free if
    /// the producer keeps fencing afterwards. Cross-thread signalling should
    /// normally use [`KernelBuilder::spin_until_eq_atomic`] instead.
    pub fn spin_until_eq(&mut self, base: Reg, offset: i32, value: impl Into<Operand>) {
        let value = value.into();
        self.while_loop(
            |k| {
                let v = k.ld_global_strong(base, offset);
                k.alu(AluOp::SetNe, v, value)
            },
            |_| {},
        );
    }

    /// Spins on an *atomic* read (`atomicAdd(addr, 0)`) until the value
    /// equals `value` — the race-free flag-polling idiom: atomics take
    /// effect at the shared cache and are exempt from fence ordering
    /// requirements (paper Table IV (d)).
    pub fn spin_until_eq_atomic(
        &mut self,
        base: Reg,
        offset: i32,
        value: impl Into<Operand>,
        scope: Scope,
    ) {
        let value = value.into();
        self.while_loop(
            |k| {
                let v = k.atom_add(base, offset, 0u32, scope);
                k.alu(AluOp::SetNe, v, value)
            },
            |_| {},
        );
    }

    /// A deadlock-free per-lane critical section guarded by the 32-bit lock
    /// word at `lock_base + lock_offset`.
    ///
    /// Emits the try-lock idiom (acquire, body and release all inside the
    /// divergent path, so a lane never holds the lock across a reconvergence
    /// point):
    ///
    /// ```text
    /// done = 0
    /// while (!done) {
    ///   if (atomicCAS(lock, 0, 1) == 0) {   // cfg.cas_scope
    ///     fence(cfg.acquire_fence)          // if present
    ///     <body>
    ///     fence(cfg.release_fence)          // if present
    ///     atomicExch(lock, 0)               // cfg.exch_scope
    ///     done = 1
    ///   }
    /// }
    /// ```
    pub fn critical_section(
        &mut self,
        lock_base: Reg,
        lock_offset: i32,
        cfg: LockConfig,
        body: impl FnOnce(&mut Self),
    ) {
        let done = self.mov(0u32);
        self.while_loop(
            |k| k.alu(AluOp::SetEq, done, 0u32),
            |k| {
                let old = k.atom_cas(lock_base, lock_offset, 0u32, 1u32, cfg.cas_scope);
                let got = k.alu(AluOp::SetEq, old, 0u32);
                k.if_then(got, |k| {
                    if let Some(s) = cfg.acquire_fence {
                        k.fence(s);
                    }
                    body(k);
                    if let Some(s) = cfg.release_fence {
                        k.fence(s);
                    }
                    k.atom_exch_noret(lock_base, lock_offset, 0u32, cfg.exch_scope);
                    k.mov_into(done, 1u32);
                });
            },
        );
    }

    /// PTX 6.0-style **acquire** on a synchronization variable (paper §VI):
    /// spins until `atomicCAS(addr, expected, desired)` succeeds, then
    /// completes the acquire with a fence — NVIDIA's documented synthesis
    /// of `ld.acquire` semantics from pre-6.0 primitives (§II-B).
    ///
    /// ScoRD's lock inference recognises exactly this pattern, so explicit
    /// acquire operations are tracked like inferred lock acquires.
    pub fn acquire(
        &mut self,
        base: Reg,
        offset: i32,
        expected: impl Into<Operand>,
        desired: impl Into<Operand>,
        scope: Scope,
    ) {
        let expected = expected.into();
        let desired = desired.into();
        self.while_loop(
            |k| {
                let old = k.atom_cas(base, offset, expected, desired, scope);
                k.alu(AluOp::SetNe, old, expected)
            },
            |_| {},
        );
        self.fence(scope);
    }

    /// PTX 6.0-style **release**: a fence followed by `atomicExch(addr,
    /// value)` — the release half of the synthesis (paper §II-B, §VI).
    pub fn release(&mut self, base: Reg, offset: i32, value: impl Into<Operand>, scope: Scope) {
        self.fence(scope);
        self.atom_exch_noret(base, offset, value, scope);
    }

    // ---- comparison shorthands -------------------------------------------

    /// Wrapping `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Add, a, b)
    }

    /// Wrapping `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Sub, a, b)
    }

    /// Wrapping `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Mul, a, b)
    }

    /// Signed `a / b` (`/0 == 0`).
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Div, a, b)
    }

    /// Signed `a % b` (`%0 == 0`).
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Rem, a, b)
    }

    /// Signed minimum.
    pub fn min(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Min, a, b)
    }

    /// `a == b` as 0/1.
    pub fn set_eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::SetEq, a, b)
    }

    /// `a != b` as 0/1.
    pub fn set_ne(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::SetNe, a, b)
    }

    /// Signed `a < b` as 0/1.
    pub fn set_lt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::SetLt, a, b)
    }

    /// Signed `a >= b` as 0/1.
    pub fn set_ge(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::SetGe, a, b)
    }

    /// Logical and of two 0/1 values.
    pub fn logical_and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::And, a, b)
    }

    /// Logical or of two 0/1 values.
    pub fn logical_or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Or, a, b)
    }

    // ---- completion -------------------------------------------------------

    /// Finalizes the kernel into a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ValidateProgramError`] if an instruction references
    /// an out-of-range register, parameter or branch target (builder misuse).
    pub fn finish(mut self) -> Result<Program, crate::ValidateProgramError> {
        if !matches!(self.instrs.last(), Some(Instr::Exit)) {
            self.exit();
        }
        Program::from_parts(
            self.name,
            self.instrs,
            self.next_reg.max(1),
            self.num_params,
            self.shared_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_then_emits_branch_to_reconvergence() {
        let mut k = KernelBuilder::new("t", 0);
        let c = k.mov(1u32);
        k.if_then(c, |k| {
            k.nop();
            k.nop();
        });
        let p = k.finish().unwrap();
        // mov, branch, nop, nop, exit
        match p.instrs()[1] {
            Instr::Branch {
                if_zero,
                target,
                reconv,
                ..
            } => {
                assert!(if_zero);
                assert_eq!(target, 4);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_else_targets_else_and_reconverges_at_end() {
        let mut k = KernelBuilder::new("t", 0);
        let c = k.mov(1u32);
        k.if_else(c, |k| k.nop(), |k| k.nop());
        let p = k.finish().unwrap();
        // 0: mov, 1: branch, 2: nop(then), 3: jump end, 4: nop(else), 5: exit
        match p.instrs()[1] {
            Instr::Branch { target, reconv, .. } => {
                assert_eq!(target, 4, "branch to else block");
                assert_eq!(reconv, 5, "reconverge after else");
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(p.instrs()[3], Instr::Jump { target: 5 });
    }

    #[test]
    fn while_loop_back_edge_and_exit() {
        let mut k = KernelBuilder::new("t", 0);
        let i = k.mov(0u32);
        k.while_loop(
            |k| k.set_lt(i, 10u32),
            |k| k.alu_into(i, AluOp::Add, i, 1u32),
        );
        let p = k.finish().unwrap();
        // 0 mov; 1 setlt; 2 branch->exit; 3 add; 4 jump->1; 5 exit
        assert_eq!(p.instrs()[4], Instr::Jump { target: 1 });
        match p.instrs()[2] {
            Instr::Branch { target, reconv, .. } => {
                assert_eq!(target, 5);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn finish_appends_exit_when_missing() {
        let mut k = KernelBuilder::new("t", 0);
        k.nop();
        let p = k.finish().unwrap();
        assert_eq!(*p.instrs().last().unwrap(), Instr::Exit);
    }

    #[test]
    fn critical_section_contains_lock_pattern() {
        let mut k = KernelBuilder::new("t", 1);
        let lock = k.ld_param(0);
        k.critical_section(lock, 0, LockConfig::device(), |k| {
            let v = k.ld_global_strong(lock, 4);
            k.st_global_strong(lock, 4, v);
        });
        let p = k.finish().unwrap();
        let cas = p.count_matching(|i| {
            matches!(
                i,
                Instr::Atom {
                    op: AtomOp::Cas,
                    ..
                }
            )
        });
        let exch = p.count_matching(|i| {
            matches!(
                i,
                Instr::Atom {
                    op: AtomOp::Exch,
                    ..
                }
            )
        });
        let fences = p.count_matching(|i| matches!(i, Instr::Fence { .. }));
        assert_eq!(cas, 1);
        assert_eq!(exch, 1);
        assert_eq!(fences, 2);
    }

    #[test]
    fn lock_config_constructors() {
        let d = LockConfig::device();
        assert_eq!(d.cas_scope, Scope::Device);
        assert_eq!(d.acquire_fence, Some(Scope::Device));
        let b = LockConfig::block();
        assert_eq!(b.exch_scope, Scope::Block);
    }

    #[test]
    fn shared_allocation_is_word_aligned() {
        let mut k = KernelBuilder::new("t", 0);
        assert_eq!(k.alloc_shared(5), 0);
        assert_eq!(k.alloc_shared(4), 8);
        k.exit();
        assert_eq!(k.finish().unwrap().shared_bytes(), 12);
    }

    #[test]
    fn global_tid_computes_linear_index_shape() {
        let mut k = KernelBuilder::new("t", 0);
        let _ = k.global_tid();
        let p = k.finish().unwrap();
        let specials = p.count_matching(|i| matches!(i, Instr::Special { .. }));
        assert_eq!(specials, 3);
    }
}
