//! Randomized-property tests for the ISA: ALU total-function behaviour,
//! builder structural invariants, program validation robustness, and
//! disassembly.
//!
//! Driven by a local copy of the deterministic SplitMix64 generator (the
//! ISA crate sits below `scord-core` in the dependency graph, so it cannot
//! borrow the one exported there), keeping the suite free of external
//! property-testing crates and fully reproducible.

use scord_isa::{
    AluOp, AtomOp, Instr, KernelBuilder, MemAddr, Operand, Program, Reg, Scope, SpecialReg,
};

/// SplitMix64 (Steele, Lea & Flood) — same constants as
/// `scord_core::SplitMix64`.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

fn for_each_case(test_seed: u64, body: impl Fn(&mut Rng)) {
    for case in 0..128u64 {
        let mut rng = Rng(test_seed ^ case.wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

const ALU_OPS: [AluOp; 22] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::MulHi,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Min,
    AluOp::Max,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
    AluOp::SetEq,
    AluOp::SetNe,
    AluOp::SetLt,
    AluOp::SetLe,
    AluOp::SetGt,
    AluOp::SetGe,
    AluOp::SetLtU,
    AluOp::SetGeU,
];

/// Every ALU op is total over all inputs (no panics, division by zero
/// included) and comparisons are boolean.
#[test]
fn alu_is_total_and_comparisons_are_boolean() {
    for_each_case(0x2001, |rng| {
        let op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
        let a = rng.next_u32();
        // Mix in adversarial operands: zero (division), extremes.
        let b = match rng.below(4) {
            0 => 0,
            1 => u32::MAX,
            _ => rng.next_u32(),
        };
        let r = op.eval(a, b);
        if matches!(
            op,
            AluOp::SetEq
                | AluOp::SetNe
                | AluOp::SetLt
                | AluOp::SetLe
                | AluOp::SetGt
                | AluOp::SetGe
                | AluOp::SetLtU
                | AluOp::SetGeU
        ) {
            assert!(r <= 1);
        }
    });
}

/// Atomic RMWs are total; CAS only writes on a match.
#[test]
fn atomics_are_total() {
    for_each_case(0x2002, |rng| {
        let old = rng.next_u32();
        let val = rng.next_u32();
        let cmp = if rng.below(4) == 0 {
            old
        } else {
            rng.next_u32()
        };
        for op in [
            AtomOp::Add,
            AtomOp::Exch,
            AtomOp::Cas,
            AtomOp::Min,
            AtomOp::Max,
            AtomOp::And,
            AtomOp::Or,
        ] {
            let new = op.apply(old, val, cmp);
            if op == AtomOp::Cas && old != cmp {
                assert_eq!(new, old);
            }
        }
    });
}

/// Randomly nested structured control flow always assembles into a valid
/// program whose branches reconverge at-or-after their targets' region.
#[test]
fn structured_nesting_always_validates() {
    for_each_case(0x2003, |rng| {
        let len = 1 + rng.below(11) as usize;
        let shape: Vec<u8> = (0..len).map(|_| rng.below(3) as u8).collect();
        let mut k = KernelBuilder::new("nest", 0);
        let c = k.mov(1u32);
        fn emit(k: &mut KernelBuilder, c: Reg, shape: &[u8]) {
            if shape.is_empty() {
                k.nop();
                return;
            }
            let (head, rest) = shape.split_first().expect("non-empty");
            match head {
                0 => {
                    k.if_then(c, |k| emit(k, c, rest));
                }
                1 => {
                    k.if_else(c, |k| emit(k, c, rest), |k| k.nop());
                }
                _ => {
                    let i = k.mov(0u32);
                    k.while_loop(
                        |k| k.set_lt(i, 1u32),
                        |k| {
                            emit(k, c, rest);
                            k.alu_into(i, AluOp::Add, i, 1u32);
                        },
                    );
                }
            }
        }
        emit(&mut k, c, &shape);
        let p = k.finish().expect("structured programs always validate");
        for (pc, ins) in p.instrs().iter().enumerate() {
            if let Instr::Branch { reconv, .. } = ins {
                assert!(
                    *reconv as usize > pc,
                    "reconvergence is ahead of the branch"
                );
            }
        }
    });
}

/// Program validation never panics on arbitrary (small) instruction soups —
/// it returns Ok or a structured error.
#[test]
fn from_parts_is_panic_free() {
    for_each_case(0x2004, |rng| {
        let len = rng.below(10) as usize;
        let instrs: Vec<Instr> = (0..len)
            .map(|_| match rng.below(6) {
                0 => Instr::Mov {
                    dst: Reg(rng.below(8) as u16),
                    src: Operand::Imm(rng.next_u32()),
                },
                1 => Instr::Ld {
                    dst: Reg(rng.below(8) as u16),
                    addr: MemAddr::new(Reg(rng.below(8) as u16), 0),
                    space: scord_isa::Space::Global,
                    strong: false,
                },
                2 => Instr::Branch {
                    cond: Reg(0),
                    if_zero: false,
                    target: rng.below(16) as u32,
                    reconv: rng.below(16) as u32,
                },
                3 => Instr::Bar,
                4 => Instr::Exit,
                _ => Instr::Fence {
                    scope: Scope::Device,
                },
            })
            .collect();
        let num_regs = 1 + rng.below(7) as u16;
        let _ = Program::from_parts("soup", instrs, num_regs, 0, 0);
    });
}

/// Every instruction disassembles to non-empty text.
#[test]
fn disassembly_is_never_empty() {
    for_each_case(0x2005, |rng| {
        let r = rng.below(4) as u16;
        let v = rng.next_u32();
        let samples = [
            Instr::Mov {
                dst: Reg(r),
                src: Operand::Imm(v),
            },
            Instr::Alu {
                op: AluOp::MulHi,
                dst: Reg(r),
                a: Operand::Imm(v),
                b: Operand::Reg(Reg(r)),
            },
            Instr::Special {
                dst: Reg(r),
                sreg: SpecialReg::LaneId,
            },
            Instr::Atom {
                op: AtomOp::Cas,
                dst: Some(Reg(r)),
                addr: MemAddr::new(Reg(r), -4),
                val: Operand::Imm(v),
                cmp: Operand::Imm(0),
                scope: Scope::Block,
            },
            Instr::Fence {
                scope: Scope::Block,
            },
            Instr::Bar,
            Instr::Nop,
        ];
        for s in samples {
            assert!(!s.to_string().is_empty());
        }
    });
}
