//! Property-based tests for the ISA: ALU total-function behaviour,
//! builder structural invariants, program validation robustness, and
//! disassembly.

use proptest::prelude::*;

use scord_isa::{
    AluOp, AtomOp, Instr, KernelBuilder, MemAddr, Operand, Program, Reg, Scope, SpecialReg,
};

const ALU_OPS: [AluOp; 22] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::MulHi,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Min,
    AluOp::Max,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
    AluOp::SetEq,
    AluOp::SetNe,
    AluOp::SetLt,
    AluOp::SetLe,
    AluOp::SetGt,
    AluOp::SetGe,
    AluOp::SetLtU,
    AluOp::SetGeU,
];

fn alu_op() -> impl Strategy<Value = AluOp> {
    (0..ALU_OPS.len()).prop_map(|i| ALU_OPS[i])
}

proptest! {
    /// Every ALU op is total over all inputs (no panics, division by zero
    /// included) and comparisons are boolean.
    #[test]
    fn alu_is_total_and_comparisons_are_boolean(
        op in alu_op(), a in any::<u32>(), b in any::<u32>(),
    ) {
        let r = op.eval(a, b);
        if matches!(
            op,
            AluOp::SetEq | AluOp::SetNe | AluOp::SetLt | AluOp::SetLe
                | AluOp::SetGt | AluOp::SetGe | AluOp::SetLtU | AluOp::SetGeU
        ) {
            prop_assert!(r <= 1);
        }
    }

    /// Atomic RMWs are total; CAS only writes on a match.
    #[test]
    fn atomics_are_total(old in any::<u32>(), val in any::<u32>(), cmp in any::<u32>()) {
        for op in [AtomOp::Add, AtomOp::Exch, AtomOp::Cas, AtomOp::Min,
                   AtomOp::Max, AtomOp::And, AtomOp::Or] {
            let new = op.apply(old, val, cmp);
            if op == AtomOp::Cas && old != cmp {
                prop_assert_eq!(new, old);
            }
        }
    }

    /// Randomly nested structured control flow always assembles into a
    /// valid program whose branches reconverge at-or-after their targets'
    /// region.
    #[test]
    fn structured_nesting_always_validates(shape in proptest::collection::vec(0u8..3, 1..12)) {
        let mut k = KernelBuilder::new("nest", 0);
        let c = k.mov(1u32);
        fn emit(k: &mut KernelBuilder, c: Reg, shape: &[u8]) {
            if shape.is_empty() {
                k.nop();
                return;
            }
            let (head, rest) = shape.split_first().expect("non-empty");
            match head {
                0 => {
                    k.if_then(c, |k| emit(k, c, rest));
                }
                1 => {
                    k.if_else(c, |k| emit(k, c, rest), |k| k.nop());
                }
                _ => {
                    let i = k.mov(0u32);
                    k.while_loop(
                        |k| k.set_lt(i, 1u32),
                        |k| {
                            emit(k, c, rest);
                            k.alu_into(i, AluOp::Add, i, 1u32);
                        },
                    );
                }
            }
        }
        emit(&mut k, c, &shape);
        let p = k.finish().expect("structured programs always validate");
        for (pc, ins) in p.instrs().iter().enumerate() {
            if let Instr::Branch { reconv, .. } = ins {
                prop_assert!(*reconv as usize > pc, "reconvergence is ahead of the branch");
            }
        }
    }

    /// Program validation never panics on arbitrary (small) instruction
    /// soups — it returns Ok or a structured error.
    #[test]
    fn from_parts_is_panic_free(
        instrs in proptest::collection::vec(
            prop_oneof![
                (0u16..8, any::<u32>()).prop_map(|(r, v)| Instr::Mov { dst: Reg(r), src: Operand::Imm(v) }),
                (0u16..8, 0u16..8).prop_map(|(d, b)| Instr::Ld {
                    dst: Reg(d),
                    addr: MemAddr::new(Reg(b), 0),
                    space: scord_isa::Space::Global,
                    strong: false,
                }),
                (0u32..16, 0u32..16).prop_map(|(t, r)| Instr::Branch {
                    cond: Reg(0), if_zero: false, target: t, reconv: r,
                }),
                Just(Instr::Bar),
                Just(Instr::Exit),
                Just(Instr::Fence { scope: Scope::Device }),
            ],
            0..10,
        ),
        num_regs in 1u16..8,
    ) {
        let _ = Program::from_parts("soup", instrs, num_regs, 0, 0);
    }

    /// Every instruction disassembles to non-empty text.
    #[test]
    fn disassembly_is_never_empty(r in 0u16..4, v in any::<u32>()) {
        let samples = [
            Instr::Mov { dst: Reg(r), src: Operand::Imm(v) },
            Instr::Alu { op: AluOp::MulHi, dst: Reg(r), a: Operand::Imm(v), b: Operand::Reg(Reg(r)) },
            Instr::Special { dst: Reg(r), sreg: SpecialReg::LaneId },
            Instr::Atom {
                op: AtomOp::Cas,
                dst: Some(Reg(r)),
                addr: MemAddr::new(Reg(r), -4),
                val: Operand::Imm(v),
                cmp: Operand::Imm(0),
                scope: Scope::Block,
            },
            Instr::Fence { scope: Scope::Block },
            Instr::Bar,
            Instr::Nop,
        ];
        for s in samples {
            prop_assert!(!s.to_string().is_empty());
        }
    }
}
