//! GDDR5 channel timing model.
//!
//! One channel serves one memory partition. Requests are serviced in order
//! with per-bank open-row state: a row hit costs `tCL + burst`, a row miss
//! pays precharge + activate first. The numbers come from Table V.

use crate::config::DramTiming;

/// A request queued at a DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line address being read or written.
    pub line_addr: u64,
    /// `true` for writes (writebacks).
    pub write: bool,
    /// `true` for detector-metadata traffic.
    pub metadata: bool,
    /// `true` for sampled-SM ghost traffic (see `GpuConfig::sample_sms`):
    /// serviced like any request but excluded from the real-busy
    /// accounting the extrapolation reads.
    pub ghost: bool,
}

/// One GDDR5 channel with open-row bank state.
#[derive(Debug, Clone)]
pub struct DramChannel {
    timing: DramTiming,
    banks: Vec<Option<u64>>, // open row per bank
    row_bytes: u64,
    busy_until: u64,
    queue: std::collections::VecDeque<DramRequest>,
    /// Total requests serviced, split for statistics.
    serviced: u64,
}

impl DramChannel {
    /// Creates an idle channel.
    #[must_use]
    pub fn new(timing: DramTiming, banks: u32, row_bytes: u32) -> Self {
        DramChannel {
            timing,
            banks: vec![None; banks as usize],
            row_bytes: u64::from(row_bytes),
            busy_until: 0,
            queue: std::collections::VecDeque::new(),
            serviced: 0,
        }
    }

    /// Queues a request.
    pub fn push(&mut self, req: DramRequest) {
        self.queue.push_back(req);
    }

    /// Pending request count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued or in flight at `now`.
    #[must_use]
    pub fn idle(&self, now: u64) -> bool {
        self.queue.is_empty() && self.busy_until <= now
    }

    /// Cycle at which the current in-flight request completes (0 when the
    /// channel has never serviced one). While the channel is non-idle, no
    /// queued request can start before this — the bound the simulator's
    /// quiescence skip uses.
    #[must_use]
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// The earliest future cycle at which this channel could make progress,
    /// or `None` when it is idle at `now` (nothing queued or in flight).
    /// While non-idle no queued request can start before the in-flight one
    /// completes, so `busy_until` is the horizon; callers clamp it to their
    /// own floor since it may already have passed when requests are queued
    /// behind a long-finished burst.
    #[must_use]
    pub fn wake_at(&self, now: u64) -> Option<u64> {
        if self.idle(now) {
            None
        } else {
            Some(self.busy_until)
        }
    }

    /// Total requests serviced so far.
    #[must_use]
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// If the channel is free at `now` and a request is pending, starts it
    /// and returns `(request, completion_time)`.
    pub fn tick(&mut self, now: u64) -> Option<(DramRequest, u64)> {
        if self.busy_until > now {
            return None;
        }
        let req = self.queue.pop_front()?;
        let row = req.line_addr / self.row_bytes;
        let bank = (row % self.banks.len() as u64) as usize;
        let t = &self.timing;
        let service = match self.banks[bank] {
            Some(open) if open == row => t.t_cl + t.burst,
            Some(_) => t.t_rp + t.t_rcd + t.t_cl + t.burst,
            None => t.t_rcd + t.t_cl + t.burst,
        };
        self.banks[bank] = Some(row);
        let done = now + u64::from(service);
        self.busy_until = done;
        self.serviced += 1;
        Some((req, done))
    }

    /// Clears all state for a fresh run.
    pub fn reset(&mut self) {
        self.banks.fill(None);
        self.busy_until = 0;
        self.queue.clear();
        self.serviced = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(DramTiming::paper_default(), 8, 2048)
    }

    fn req(line: u64) -> DramRequest {
        DramRequest {
            line_addr: line,
            write: false,
            metadata: false,
            ghost: false,
        }
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut c = chan();
        c.push(req(0));
        c.push(req(128)); // same 2KB row
        c.push(req(8 * 2048)); // same bank (row 8, bank 0), different row
        let (_, t1) = c.tick(0).unwrap();
        assert_eq!(t1, 12 + 4 + 12, "first access: tRCD + tCL + burst");
        let (_, t2) = c.tick(t1).unwrap();
        assert_eq!(t2 - t1, 12 + 4, "row hit: tCL + burst");
        let (_, t3) = c.tick(t2).unwrap();
        assert_eq!(t3 - t2, 12 + 12 + 12 + 4, "row conflict pays tRP + tRCD");
    }

    #[test]
    fn channel_serializes_requests() {
        let mut c = chan();
        c.push(req(0));
        c.push(req(4096));
        let (_, t1) = c.tick(0).unwrap();
        assert!(c.tick(0).is_none(), "busy until first completes");
        assert!(c.tick(t1).is_some());
    }

    #[test]
    fn idle_and_pending_reporting() {
        let mut c = chan();
        assert!(c.idle(0));
        c.push(req(0));
        assert_eq!(c.pending(), 1);
        assert!(!c.idle(0));
        let (_, t) = c.tick(0).unwrap();
        assert!(!c.idle(0), "in flight");
        assert!(c.idle(t));
        assert_eq!(c.serviced(), 1);
    }

    #[test]
    fn wake_at_tracks_the_busy_horizon() {
        let mut c = chan();
        assert_eq!(c.wake_at(0), None, "idle channel never wakes");
        c.push(req(0));
        // Queued but not started: busy_until is stale (0), so the horizon
        // is in the past — callers clamp to their floor.
        assert_eq!(c.wake_at(0), Some(0));
        let (_, t) = c.tick(0).unwrap();
        assert_eq!(c.wake_at(0), Some(t), "in flight until completion");
        assert_eq!(c.wake_at(t), None, "idle again once complete");
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = chan();
        c.push(req(0));
        let _ = c.tick(0);
        c.reset();
        assert!(c.idle(0));
        assert_eq!(c.serviced(), 0);
        c.push(req(128));
        let (_, t) = c.tick(0).unwrap();
        assert_eq!(t, 28, "row buffer closed after reset");
    }
}
