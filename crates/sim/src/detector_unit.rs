//! The hardware race-detector unit hanging off the interconnect
//! (paper Figure 6, bottom right).
//!
//! Detection packets (one per warp memory instruction, carrying each lane's
//! access) queue here. Execution continues while detection lags behind —
//! *until the buffer fills*: an L1 hit that cannot enqueue its packet stalls
//! the SM (the LHD overhead of Figure 10). Events are processed in FIFO
//! order so the detector observes fences, barriers and accesses in the order
//! the machine issued them.

use std::collections::VecDeque;

use scord_core::{
    Detector, DetectorError, EventAction, FaultInjector, FaultPlan, FaultStats, MemAccess,
};
use scord_isa::Scope;

use crate::SimStats;

/// Stream id salting the queue injector's PRNG so its decisions are
/// independent of the detector-internal injector built from the same plan.
const QUEUE_FAULT_STREAM: u64 = 0xD373;

/// An event destined for the race detector.
#[derive(Debug, Clone)]
pub enum DetectorEvent {
    /// One warp memory instruction: the per-lane global accesses.
    Access {
        /// Lane-level accesses (up to 32).
        accesses: Vec<MemAccess>,
    },
    /// A scoped fence executed by a warp.
    Fence {
        /// SM index.
        sm: u8,
        /// Warp slot.
        warp_slot: u8,
        /// Fence scope.
        scope: Scope,
    },
    /// A barrier completed for a block.
    Barrier {
        /// SM index.
        sm: u8,
        /// Global block slot.
        block_slot: u8,
    },
    /// A warp slot was assigned to a new block.
    WarpAssigned {
        /// SM index.
        sm: u8,
        /// Warp slot.
        warp_slot: u8,
    },
}

/// The detector plus its input queue and processing throughput.
#[derive(Debug)]
pub struct DetectorUnit {
    detector: Box<dyn Detector>,
    queue: VecDeque<DetectorEvent>,
    capacity: usize,
    /// Lanes of the head `Access` event already processed.
    head_progress: usize,
    /// Queue-level fault injector (event drop/duplicate/reorder), on an
    /// independent stream from the detector's own injector.
    injector: Option<FaultInjector>,
    /// Recycled lane-access buffers: finished (or dropped) `Access` events
    /// return their `Vec` here, [`DetectorUnit::take_spare`] hands it back
    /// to the SM building the next detection packet. Bounded so a burst
    /// cannot pin memory.
    spare: Vec<Vec<MemAccess>>,
}

/// Upper bound on pooled lane-access buffers (32 lanes × 64 ≈ a few KB).
const SPARE_CAP: usize = 64;

impl DetectorUnit {
    /// Wraps `detector` with a `capacity`-entry input queue.
    #[must_use]
    pub fn new(detector: Box<dyn Detector>, capacity: usize) -> Self {
        Self::with_faults(detector, capacity, None)
    }

    /// Wraps `detector` with a `capacity`-entry input queue and, when `plan`
    /// is set, arms queue-level event faults (drop/duplicate/reorder).
    #[must_use]
    pub fn with_faults(
        detector: Box<dyn Detector>,
        capacity: usize,
        plan: Option<FaultPlan>,
    ) -> Self {
        DetectorUnit {
            detector,
            queue: VecDeque::new(),
            capacity,
            head_progress: 0,
            injector: plan.map(|p| FaultInjector::derived(p, QUEUE_FAULT_STREAM)),
            spare: Vec::new(),
        }
    }

    /// An empty lane-access buffer, recycled from a previously processed
    /// `Access` event when one is pooled.
    #[must_use]
    pub fn take_spare(&mut self) -> Vec<MemAccess> {
        self.spare.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut accesses: Vec<MemAccess>) {
        if self.spare.len() < SPARE_CAP {
            accesses.clear();
            self.spare.push(accesses);
        }
    }

    /// `true` if an L1-hit detection packet can be accepted right now.
    /// Packets riding request packets to L2 are always accepted (they travel
    /// with traffic that exists anyway).
    #[must_use]
    pub fn can_accept_l1_hit(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Enqueues an event, applying any armed queue-level faults: the event
    /// may be dropped, enqueued twice, or swapped with the event behind it.
    pub fn enqueue(&mut self, ev: DetectorEvent) {
        let action = match self.injector.as_mut() {
            Some(inj) => inj.event_action(),
            None => EventAction::Deliver,
        };
        match action {
            EventAction::Deliver => self.queue.push_back(ev),
            EventAction::Drop => {
                if let DetectorEvent::Access { accesses } = ev {
                    self.recycle(accesses);
                }
            }
            EventAction::Duplicate => {
                self.queue.push_back(ev.clone());
                self.queue.push_back(ev);
            }
            EventAction::Reorder => {
                self.queue.push_back(ev);
                // Swap the two newest events — but never a head `Access`
                // event whose lanes are already partially processed.
                let n = self.queue.len();
                if n >= 3 || (n == 2 && self.head_progress == 0) {
                    self.queue.swap(n - 1, n - 2);
                }
            }
        }
    }

    /// Processes up to `lane_budget` lane accesses (sync events are free),
    /// appending the 128-byte-aligned metadata lines touched to `md_lines`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DetectorError`] the detector reports — a
    /// malformed event in the stream.
    pub fn tick(
        &mut self,
        lane_budget: u32,
        md_lines: &mut Vec<u64>,
        stats: &mut SimStats,
    ) -> Result<(), DetectorError> {
        let mut budget = lane_budget;
        while budget > 0 {
            // Pop the head; unfinished Access events are pushed back so the
            // lane list is never cloned per tick.
            let Some(head) = self.queue.pop_front() else {
                break;
            };
            match head {
                DetectorEvent::Access { accesses } => {
                    while budget > 0 && self.head_progress < accesses.len() {
                        let a = &accesses[self.head_progress];
                        let effects = self.detector.on_access(a)?;
                        let line = effects.md_addr & !127;
                        if md_lines.last() != Some(&line) {
                            md_lines.push(line);
                        }
                        stats.detector_lane_accesses += 1;
                        self.head_progress += 1;
                        budget -= 1;
                    }
                    if self.head_progress >= accesses.len() {
                        self.head_progress = 0;
                        stats.detector_events += 1;
                        self.recycle(accesses);
                    } else {
                        self.queue.push_front(DetectorEvent::Access { accesses });
                        break; // budget exhausted mid-event
                    }
                }
                DetectorEvent::Fence {
                    sm,
                    warp_slot,
                    scope,
                } => self.detector.on_fence(sm, warp_slot, scope)?,
                DetectorEvent::Barrier { sm, block_slot } => {
                    self.detector.on_barrier(sm, block_slot)?;
                }
                DetectorEvent::WarpAssigned { sm, warp_slot } => {
                    self.detector.on_warp_assigned(sm, warp_slot)?;
                }
            }
        }
        Ok(())
    }

    /// Combined fault-injection counters: detector-level plus queue-level.
    /// `None` when neither side runs under a fault plan.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        let queue = self.injector.as_ref().map(FaultInjector::stats);
        match (self.detector.fault_stats(), queue) {
            (Some(d), Some(q)) => Some(d.merged(q)),
            (Some(d), None) => Some(*d),
            (None, Some(q)) => Some(*q),
            (None, None) => None,
        }
    }

    /// `true` when no events are queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// The wrapped detector (for race inspection).
    #[must_use]
    pub fn detector(&self) -> &dyn Detector {
        self.detector.as_ref()
    }

    /// Mutable access to the wrapped detector.
    pub fn detector_mut(&mut self) -> &mut dyn Detector {
        self.detector.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_core::{AccessKind, Accessor, DetectorConfig, ScordDetector};

    fn unit(capacity: usize) -> DetectorUnit {
        DetectorUnit::new(
            Box::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20))),
            capacity,
        )
    }

    fn access_event(n: usize, block: u8) -> DetectorEvent {
        DetectorEvent::Access {
            accesses: (0..n)
                .map(|i| MemAccess {
                    kind: AccessKind::Store,
                    addr: (i * 4) as u64,
                    strong: true,
                    pc: 1,
                    who: Accessor {
                        sm: block / 8,
                        block_slot: block,
                        warp_slot: 0,
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn throughput_limits_lane_processing() {
        let mut u = unit(8);
        u.enqueue(access_event(32, 0));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(8, &mut lines, &mut stats).unwrap();
        assert_eq!(stats.detector_lane_accesses, 8);
        assert_eq!(stats.detector_events, 0, "event not finished yet");
        assert!(!u.is_idle());
        for _ in 0..3 {
            u.tick(8, &mut lines, &mut stats).unwrap();
        }
        assert_eq!(stats.detector_events, 1);
        assert!(u.is_idle());
    }

    #[test]
    fn metadata_lines_are_deduplicated_within_bursts() {
        let mut u = unit(8);
        u.enqueue(access_event(32, 0));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(64, &mut lines, &mut stats).unwrap();
        // 32 consecutive words → 32 metadata entries at ratio 16 → a couple
        // of metadata lines, not 32.
        assert!(
            lines.len() <= 4,
            "consecutive accesses share metadata lines, got {}",
            lines.len()
        );
    }

    #[test]
    fn capacity_gates_l1_hits_only() {
        let mut u = unit(2);
        assert!(u.can_accept_l1_hit());
        u.enqueue(access_event(1, 0));
        u.enqueue(access_event(1, 0));
        assert!(!u.can_accept_l1_hit());
        // Overflow enqueue still allowed (piggybacked packets).
        u.enqueue(access_event(1, 0));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(64, &mut lines, &mut stats).unwrap();
        assert!(u.is_idle());
        assert_eq!(stats.detector_events, 3);
    }

    #[test]
    fn event_faults_are_deterministic_in_the_seed() {
        use scord_core::{FaultKind, FaultKindSet};
        let plan = FaultPlan {
            seed: 0xFA_17,
            rate_ppm: 400_000,
            kinds: FaultKindSet::empty()
                .with(FaultKind::EventDrop)
                .with(FaultKind::EventDuplicate)
                .with(FaultKind::EventReorder),
        };
        let run = || {
            let mut u = DetectorUnit::with_faults(
                Box::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20))),
                64,
                Some(plan),
            );
            for i in 0..32 {
                u.enqueue(access_event(2, (i % 8) * 8));
            }
            let mut lines = Vec::new();
            let mut stats = SimStats::default();
            while !u.is_idle() {
                u.tick(8, &mut lines, &mut stats).unwrap();
            }
            (
                stats.detector_events,
                u.detector().races().unique_count(),
                u.fault_stats().expect("armed").total(),
            )
        };
        assert_eq!(run(), run(), "same plan, same event stream, same outcome");
        assert!(run().2 > 0, "40% rate over 32 events must fire");
    }

    #[test]
    fn dropped_events_never_reach_the_detector() {
        let plan = FaultPlan::single(scord_core::FaultKind::EventDrop, 1_000_000, 7);
        let mut u = DetectorUnit::with_faults(
            Box::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20))),
            8,
            Some(plan),
        );
        for _ in 0..4 {
            u.enqueue(access_event(1, 0));
        }
        assert!(u.is_idle(), "rate 100%: every event dropped at the queue");
        assert_eq!(u.fault_stats().expect("armed").total(), 4);
    }

    #[test]
    fn duplicated_events_are_processed_twice() {
        let plan = FaultPlan::single(scord_core::FaultKind::EventDuplicate, 1_000_000, 7);
        let mut u = DetectorUnit::with_faults(
            Box::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20))),
            8,
            Some(plan),
        );
        u.enqueue(access_event(1, 0));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(64, &mut lines, &mut stats).unwrap();
        assert_eq!(stats.detector_events, 2, "one enqueue, two deliveries");
    }

    #[test]
    fn reorder_never_swaps_a_partially_processed_head() {
        let plan = FaultPlan::single(scord_core::FaultKind::EventReorder, 1_000_000, 7);
        let mut u = DetectorUnit::with_faults(
            Box::new(ScordDetector::new(DetectorConfig::paper_default(1 << 20))),
            8,
            Some(plan),
        );
        u.enqueue(access_event(32, 0));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(8, &mut lines, &mut stats).unwrap();
        assert_eq!(stats.detector_lane_accesses, 8, "head partially processed");
        // A reorder now must NOT move the half-processed Access event: its
        // remaining lanes would be attributed to the wrong position.
        u.enqueue(access_event(1, 8));
        while !u.is_idle() {
            u.tick(8, &mut lines, &mut stats).unwrap();
        }
        assert_eq!(stats.detector_events, 2);
        assert_eq!(
            stats.detector_lane_accesses, 33,
            "all 32 + 1 lanes processed exactly once"
        );
    }

    #[test]
    fn sync_events_are_processed_in_order_and_free() {
        let mut u = unit(8);
        u.enqueue(access_event(1, 0));
        u.enqueue(DetectorEvent::Fence {
            sm: 0,
            warp_slot: 0,
            scope: Scope::Device,
        });
        u.enqueue(access_event(1, 8));
        let mut lines = Vec::new();
        let mut stats = SimStats::default();
        u.tick(2, &mut lines, &mut stats).unwrap();
        assert!(u.is_idle(), "2 lanes + free fence all fit in one tick");
        assert_eq!(
            u.detector().races().unique_count(),
            0,
            "fence ordered between the conflicting stores"
        );
    }
}
