//! # scord-sim
//!
//! A cycle-level GPU architectural simulator, the substrate on which this
//! repository reproduces *ScoRD: A Scoped Race Detector for GPUs*
//! (ISCA 2020). The paper evaluates ScoRD inside GPGPU-Sim; this crate plays
//! that role, modelling:
//!
//! * **SMs** with resident-block/warp-slot occupancy, a loose round-robin
//!   dual-issue scheduler, and exact SIMT divergence via a reconvergence
//!   stack ([`Warp`]);
//! * the **memory hierarchy** of Table V: per-warp coalescing into 128-byte
//!   transactions, a 16 KB 4-way L1 per SM (global write-evict, bypassed by
//!   strong/volatile accesses), a 1.5 MB 8-way write-back L2 sliced over 12
//!   memory partitions, and GDDR5 channels with open-row bank timing;
//! * a flit-based **crossbar NoC** with bounded injection queues, so bursty
//!   or atomic-heavy workloads congest realistically;
//! * the **ScoRD attachment points**: every global access (L1 hits
//!   included) produces a detection packet consumed in order by the
//!   [`DetectorUnit`]; metadata reads/writebacks travel through L2/DRAM;
//!   request packets grow by a detection header. Each overhead source can be
//!   switched off independently to reproduce the paper's Figure 10
//!   attribution ([`OverheadToggles`]).
//!
//! Function and timing are decoupled: [`DeviceMemory`] is a single coherent
//! store (races are detected from metadata, never from observing stale
//! values), while caches, queues and DRAM model time.
//!
//! See the crate-level doc example on [`Gpu`] for the end-to-end flow:
//! build a kernel with `scord_isa::KernelBuilder`, allocate buffers, launch,
//! inspect [`SimStats`] and the race log.

#![warn(missing_docs)]

mod cache;
mod config;
mod detector_unit;
mod dram;
mod front;
mod gpu;
mod mem;
mod memside;
mod sample;
mod sm;
mod stats;
mod warp;

pub use cache::{Cache, CacheOutcome, Victim};
pub use config::{DetectionMode, DramTiming, GpuConfig, OverheadToggles};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide override for the quiescence skip-ahead (see
/// [`GpuConfig::cycle_skip`]). On by default; `run-experiments
/// --no-cycle-skip` clears it for A/B debugging. A `Gpu` samples the
/// override at [`Gpu::launch`], so flipping it mid-simulation has no
/// effect on an in-flight launch.
static CYCLE_SKIP: AtomicBool = AtomicBool::new(true);

/// Enables or disables cycle skipping process-wide. Results are
/// byte-identical either way — skipping only jumps over cycles in which no
/// component can make progress — so this is purely a debug/verification
/// knob.
pub fn set_cycle_skip(enabled: bool) {
    CYCLE_SKIP.store(enabled, Ordering::Relaxed);
}

/// The current process-wide cycle-skip setting.
#[must_use]
pub fn cycle_skip_enabled() -> bool {
    CYCLE_SKIP.load(Ordering::Relaxed)
}

use std::sync::atomic::AtomicU32;

/// Process-wide floor for [`GpuConfig::sm_threads`] (`0` = no override).
/// Set by `run-experiments --sm-threads N` so every `Gpu` built afterwards
/// parallelizes its SM front-end phase without each call site plumbing the
/// knob through. Sampled at [`Gpu::try_new`]; results are byte-identical
/// for any value (see the `sm_threads` field docs).
static SM_THREADS: AtomicU32 = AtomicU32::new(0);

/// Raises the process-wide SM front-end thread floor (`0` clears the
/// override). A `Gpu` samples this at construction: the effective thread
/// count is `max(cfg.sm_threads, override)`, capped at `num_sms`.
pub fn set_sm_threads(threads: u32) {
    SM_THREADS.store(threads, Ordering::Relaxed);
}

/// The current process-wide SM front-end thread override (`0` = none).
#[must_use]
pub fn sm_threads_override() -> u32 {
    SM_THREADS.load(Ordering::Relaxed)
}

/// Process-wide floor for [`GpuConfig::mem_threads`] (`0` = no override).
/// Set by `run-experiments --mem-threads N` so every `Gpu` built afterwards
/// shards its Phase B memory-side drain without each call site plumbing the
/// knob through. Sampled at [`Gpu::try_new`]; results are byte-identical
/// for any value (see the `mem_threads` field docs).
static MEM_THREADS: AtomicU32 = AtomicU32::new(0);

/// Raises the process-wide memory-side shard thread floor (`0` clears the
/// override). A `Gpu` samples this at construction: the effective thread
/// count is `max(cfg.mem_threads, override)`, capped at `channels`.
pub fn set_mem_threads(threads: u32) {
    MEM_THREADS.store(threads, Ordering::Relaxed);
}

/// The current process-wide memory-side shard thread override (`0` = none).
#[must_use]
pub fn mem_threads_override() -> u32 {
    MEM_THREADS.load(Ordering::Relaxed)
}
pub use detector_unit::{DetectorEvent, DetectorUnit};
pub use dram::{DramChannel, DramRequest};
pub use gpu::{Gpu, Packet, SimError};
pub use mem::{DeviceBuffer, DeviceMemory};
pub use sample::SampleReport;
pub use sm::{Sm, SmBlock};
pub use stats::{DramStats, SimStats, StallStats};
pub use warp::{Frame, Warp, WarpState, RPC_NONE};
