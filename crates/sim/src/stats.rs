//! Simulation statistics — the raw counters behind every figure.

use std::fmt;

/// DRAM traffic, split the way Figure 9 reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Demand data reads (L2 misses for program data).
    pub data_reads: u64,
    /// Dirty data-line writebacks.
    pub data_writebacks: u64,
    /// Metadata reads (L2 misses for detector metadata).
    pub metadata_reads: u64,
    /// Dirty metadata-line writebacks.
    pub metadata_writebacks: u64,
}

impl DramStats {
    /// Total DRAM accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data() + self.metadata()
    }

    /// Non-metadata accesses (normal data + writebacks).
    #[must_use]
    pub fn data(&self) -> u64 {
        self.data_reads + self.data_writebacks
    }

    /// Metadata accesses (reads + writebacks).
    #[must_use]
    pub fn metadata(&self) -> u64 {
        self.metadata_reads + self.metadata_writebacks
    }
}

/// Stall cycles by cause (the inputs to Figure 10's attribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallStats {
    /// Warp-cycles stalled because an L1 hit could not enqueue its
    /// detection packet (LHD).
    pub lhd: u64,
    /// Warp-cycles stalled on a full NoC injection queue.
    pub noc_full: u64,
    /// Warp-cycles waiting on outstanding memory responses.
    pub memory: u64,
    /// Warp-cycles waiting at barriers.
    pub barrier: u64,
}

/// All counters collected during one kernel execution.
///
/// Derives `PartialEq` so the determinism tests can assert that the
/// quiescence skip-ahead reproduces every counter of un-skipped execution
/// exactly (after zeroing the diagnostic [`SimStats::cycles_skipped`]
/// field, the only one allowed to differ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total GPU cycles from launch to the last block's completion.
    pub cycles: u64,
    /// Of [`SimStats::cycles`], how many were jumped over by the
    /// quiescence skip-ahead rather than ticked through. Diagnostic only:
    /// it is the one counter that legitimately differs between skipped and
    /// un-skipped execution (0 when skipping is disabled), and no
    /// experiment output includes it.
    pub cycles_skipped: u64,
    /// Warp instructions executed.
    pub warp_instructions: u64,
    /// Thread instructions (warp instructions × active lanes).
    pub thread_instructions: u64,
    /// L1 data-cache hits (weak global loads only; strong accesses bypass).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits for program data.
    pub l2_data_hits: u64,
    /// L2 misses for program data.
    pub l2_data_misses: u64,
    /// L2 hits for detector metadata.
    pub l2_md_hits: u64,
    /// L2 misses for detector metadata.
    pub l2_md_misses: u64,
    /// DRAM traffic breakdown.
    pub dram: DramStats,
    /// NoC flits injected (requests + responses + detection headers).
    pub noc_flits: u64,
    /// Detection packets processed by the race detector.
    pub detector_events: u64,
    /// Lane-level accesses checked by the detector.
    pub detector_lane_accesses: u64,
    /// Stall-cycle breakdown.
    pub stalls: StallStats,
    /// Unique races reported.
    pub unique_races: usize,
    /// Dynamic race reports.
    pub total_races: u64,
    /// Faults injected by the fault plan, if one was configured (zero
    /// otherwise). Cumulative within one `Gpu`, like the race counts.
    pub faults_injected: u64,
}

impl SimStats {
    /// Accumulates another launch's counters into this one (cycles sum —
    /// sequential kernels; race counts take `other`'s, which are cumulative
    /// within one `Gpu`).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.cycles_skipped += other.cycles_skipped;
        self.warp_instructions += other.warp_instructions;
        self.thread_instructions += other.thread_instructions;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_data_hits += other.l2_data_hits;
        self.l2_data_misses += other.l2_data_misses;
        self.l2_md_hits += other.l2_md_hits;
        self.l2_md_misses += other.l2_md_misses;
        self.dram.data_reads += other.dram.data_reads;
        self.dram.data_writebacks += other.dram.data_writebacks;
        self.dram.metadata_reads += other.dram.metadata_reads;
        self.dram.metadata_writebacks += other.dram.metadata_writebacks;
        self.noc_flits += other.noc_flits;
        self.detector_events += other.detector_events;
        self.detector_lane_accesses += other.detector_lane_accesses;
        self.stalls.lhd += other.stalls.lhd;
        self.stalls.noc_full += other.stalls.noc_full;
        self.stalls.memory += other.stalls.memory;
        self.stalls.barrier += other.stalls.barrier;
        self.unique_races = other.unique_races;
        self.total_races = other.total_races;
        self.faults_injected = other.faults_injected;
    }

    /// Instructions per cycle (warp granularity).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// L1 hit rate over weak global loads.
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} warp_insts={} ipc={:.3}",
            self.cycles,
            self.warp_instructions,
            self.ipc()
        )?;
        writeln!(
            f,
            "L1 {}/{} hits ({:.1}%), L2 data {}/{} hits, L2 md {}/{} hits",
            self.l1_hits,
            self.l1_hits + self.l1_misses,
            self.l1_hit_rate() * 100.0,
            self.l2_data_hits,
            self.l2_data_hits + self.l2_data_misses,
            self.l2_md_hits,
            self.l2_md_hits + self.l2_md_misses,
        )?;
        writeln!(
            f,
            "DRAM: data {} (+{} wb), metadata {} (+{} wb)",
            self.dram.data_reads,
            self.dram.data_writebacks,
            self.dram.metadata_reads,
            self.dram.metadata_writebacks
        )?;
        write!(
            f,
            "races: {} unique / {} dynamic; stalls lhd={} noc={} mem={}",
            self.unique_races,
            self.total_races,
            self.stalls.lhd,
            self.stalls.noc_full,
            self.stalls.memory
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_split_sums() {
        let d = DramStats {
            data_reads: 10,
            data_writebacks: 5,
            metadata_reads: 3,
            metadata_writebacks: 2,
        };
        assert_eq!(d.data(), 15);
        assert_eq!(d.metadata(), 5);
        assert_eq!(d.total(), 20);
    }

    #[test]
    fn ipc_and_hit_rate_handle_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        let s = SimStats {
            cycles: 100,
            warp_instructions: 250,
            l1_hits: 3,
            l1_misses: 1,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = SimStats {
            cycles: 42,
            unique_races: 3,
            ..SimStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("cycles=42"));
        assert!(text.contains("3 unique"));
    }
}
