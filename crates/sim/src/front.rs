//! Phase A of the two-phase tick: the per-SM front end.
//!
//! [`Gpu::tick`](crate::Gpu) splits each cycle in two. **Phase A** (this
//! module) runs every SM's front end — the occupancy-bitmask prepass, the
//! round-robin issue loop, and warp execution up to the point where
//! global-memory and detector events are *generated*. It touches only
//! SM-local state (`&mut Sm`, which owns its warps, blocks, L1 and NoC
//! injection queue) plus an immutable shared context ([`FrontCtx`]), so
//! the SMs can run concurrently on a worker pool. Every effect on shared
//! machine state — functional memory, register writebacks from global
//! loads, detector events, heap events, statistics, block retirement — is
//! recorded into the SM's pre-allocated [`FrontBuf`] instead of applied.
//!
//! **Phase B** (`Gpu::commit_front`) then drains the buffers serially in
//! fixed SM order, replaying each SM's events in generation order. Because
//! the replay order is a pure function of the simulation state (never of
//! host thread scheduling), results are byte-identical for any
//! `sm_threads` value — including the detector's fault-injection RNG
//! stream, which is consumed at enqueue time in Phase B.
//!
//! The one front-end input that was cross-SM-coupled in the old
//! single-phase tick is the L1-hit-detection (LHD) backpressure signal:
//! it used to read the detector queue's *live* length, which included
//! events enqueued by lower-numbered SMs earlier in the same cycle. The
//! two-phase tick latches the signal once per cycle instead
//! ([`FrontCtx::lhd_open`]) — the hardware-realistic registered
//! backpressure wire — so every SM observes the same value regardless of
//! execution order. See DESIGN.md "Intra-sim parallelism".

use scord_core::Accessor;
use scord_isa::{Instr, Operand, Pc, Program, Reg, Scope, Space, SpecialReg};

use crate::gpu::Packet;
use crate::{GpuConfig, OverheadToggles, SimError, SimStats, Sm, Warp, WarpState};

/// Reusable per-access coalescing buffers. One warp memory instruction
/// used to allocate fresh `Vec`s; these persist on the SM's [`FrontBuf`]
/// and are cleared per access instead.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Coalesced `(line address, lane mask)` transactions.
    pub line_lanes: Vec<(u64, u32)>,
    /// Transactions missing L1 (or bypassing it).
    pub to_l2: Vec<(u64, u32)>,
    /// Lines hitting L1.
    pub l1_hits: Vec<u64>,
}

/// Statistics a front end accumulates locally during Phase A. All fields
/// are commutative counters, so merging per-SM deltas into [`SimStats`]
/// in any order gives the same totals (Phase B merges in SM order
/// anyway, keeping even a hypothetical non-commutative field exact).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FrontStats {
    pub warp_instructions: u64,
    pub thread_instructions: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub stall_memory: u64,
    pub stall_barrier: u64,
    pub stall_noc_full: u64,
    pub stall_lhd: u64,
}

impl FrontStats {
    /// Folds this SM's Phase-A deltas into the launch statistics.
    pub fn apply(&self, stats: &mut SimStats) {
        stats.warp_instructions += self.warp_instructions;
        stats.thread_instructions += self.thread_instructions;
        stats.l1_hits += self.l1_hits;
        stats.l1_misses += self.l1_misses;
        stats.stalls.memory += self.stall_memory;
        stats.stalls.barrier += self.stall_barrier;
        stats.stalls.noc_full += self.stall_noc_full;
        stats.stalls.lhd += self.stall_lhd;
    }
}

/// A global access issued in Phase A, committed in Phase B: functional
/// memory, register writebacks, the detector `Access` event, and the
/// L1-hit response events. Operand *values* are not captured — registers
/// are stable between phases (a warp issues at most one instruction per
/// cycle and register files are private per warp), so Phase B reads them
/// exactly as the single-phase tick did.
#[derive(Debug)]
pub(crate) struct PendingAccess {
    pub warp_slot: u8,
    pub op: GlobalOp,
    pub pc: Pc,
    pub strong: bool,
    pub who: Accessor,
    /// `start..end` range into [`FrontBuf::lane_buf`].
    pub lanes: (u32, u32),
    /// L1-hit lines: the number of `WarpResponse` heap events Phase B
    /// schedules at `now + l1_latency`.
    pub l1_hits: u32,
}

/// One deferred shared-state effect, in generation order. Phase B replays
/// the buffer front to back, so the detector observes events (and
/// consumes fault-injection randomness) in exactly the order the old
/// single-phase tick produced them.
#[derive(Debug)]
pub(crate) enum PendingEvent {
    /// A warp armed its fence this cycle (prepass).
    Fence { warp_slot: u8, scope: Scope },
    /// A block's barrier released this cycle.
    Barrier { block_slot: u8 },
    /// A global memory instruction issued this cycle.
    Access(PendingAccess),
}

/// Per-SM Phase-A output buffer. Pre-allocated once, cleared per cycle;
/// steady-state simulation allocates nothing here.
#[derive(Debug, Default)]
pub(crate) struct FrontBuf {
    /// Deferred effects in generation order.
    pub events: Vec<PendingEvent>,
    /// Flat `(lane, byte address)` storage; [`PendingAccess::lanes`]
    /// ranges index into it.
    pub lane_buf: Vec<(u32, u64)>,
    /// This SM's Phase-A statistics deltas.
    pub stats: FrontStats,
    /// Blocks that finished this cycle (Phase B decrements `blocks_live`).
    pub blocks_retired: u32,
    /// A retirement freed resources: Phase B re-arms the dispatch hint.
    pub dispatch: bool,
    /// Deferred execution error; Phase B surfaces it after applying this
    /// SM's earlier (fully-committed) events, matching the single-phase
    /// abort point.
    pub error: Option<SimError>,
    /// Per-access coalescing scratch.
    pub scratch: Scratch,
}

impl FrontBuf {
    /// Clears the per-cycle state (capacity retained).
    pub fn begin_cycle(&mut self) {
        self.events.clear();
        self.lane_buf.clear();
        self.stats = FrontStats::default();
        self.blocks_retired = 0;
        self.dispatch = false;
        self.error = None;
    }
}

/// Immutable shared context for one Phase A pass. Everything a front end
/// may read that is not owned by its `Sm`; nothing here is written during
/// Phase A, which is what makes the per-SM fan-out sound.
pub(crate) struct FrontCtx<'a> {
    pub cfg: &'a GpuConfig,
    pub program: &'a Program,
    pub params: &'a [u32],
    pub now: u64,
    /// Device-memory size for bounds checks (the contents are only
    /// touched in Phase B).
    pub mem_bytes: u64,
    pub grid_blocks: u32,
    pub threads_per_block: u32,
    /// A detector is attached (events must be generated).
    pub detect: bool,
    /// The cycle-latched LHD backpressure signal: `true` when the
    /// detector queue accepted L1-hit packets at the start of this cycle
    /// (or no detector is attached).
    pub lhd_open: bool,
    pub toggles: OverheadToggles,
}

pub(crate) enum Outcome {
    Issued,
    Stalled,
    Exited,
}

/// A warp memory instruction bound for global memory, carried from issue
/// (Phase A) to commit (Phase B).
#[derive(Debug, Clone, Copy)]
pub(crate) enum GlobalOp {
    Load {
        dst: Reg,
        strong: bool,
    },
    Store {
        src: Operand,
        strong: bool,
    },
    Atomic {
        op: scord_isa::AtomOp,
        dst: Option<Reg>,
        val: Operand,
        cmp: Operand,
        scope: Scope,
    },
}

/// Iterates the set lane indices of a mask.
pub(crate) fn lanes(mask: u32) -> impl Iterator<Item = u32> {
    (0..32).filter(move |i| mask & (1 << i) != 0)
}

/// Runs one SM's complete front end for this cycle: prepass, then the
/// dual-issue loop. All shared-state effects land in `sm.front`.
pub(crate) fn sm_front(ctx: &FrontCtx, sm: &mut Sm) {
    sm.front.begin_cycle();
    prepass(ctx, sm);
    issue(ctx, sm);
}

/// Cheap per-cycle state progression: fence completion, drained exits,
/// stall accounting. Iterates the occupancy bitmask rather than every
/// slot; the snapshot may go stale when a retirement mid-loop clears a
/// later bit, so each slot is still re-checked for residency.
fn prepass(ctx: &FrontCtx, sm: &mut Sm) {
    let mut occ = sm.occupied;
    while occ != 0 {
        let idx = occ.trailing_zeros() as usize;
        occ &= occ - 1;
        let mut retire_block = None;
        let Some(w) = sm.warps[idx].as_mut() else {
            continue;
        };
        match w.state {
            WarpState::WaitFence { end: None, scope }
                if w.outstanding_stores == 0 && w.pending_loads == 0 =>
            {
                let latency = match scope {
                    Scope::Block => ctx.cfg.fence_block_latency,
                    Scope::Device => ctx.cfg.fence_device_latency,
                };
                let warp_slot = w.warp_slot;
                w.state = WarpState::WaitFence {
                    end: Some(ctx.now + u64::from(latency)),
                    scope,
                };
                if ctx.detect {
                    sm.front
                        .events
                        .push(PendingEvent::Fence { warp_slot, scope });
                }
            }
            WarpState::WaitFence {
                end: Some(t),
                scope: _,
            } if ctx.now >= t => {
                w.state = WarpState::Ready { at: ctx.now };
            }
            WarpState::WaitMem => {
                sm.front.stats.stall_memory += 1;
                // A draining exited warp: retire once all traffic landed.
                if w.pending_loads == 0 && w.outstanding_stores == 0 && w.is_done() {
                    retire_block = Some(w.block_index);
                    w.state = WarpState::Done;
                }
            }
            WarpState::WaitBarrier => sm.front.stats.stall_barrier += 1,
            _ => {}
        }
        if let Some(bidx) = retire_block {
            try_retire_warp(ctx, sm, idx, bidx);
        }
    }
}

/// The rotated-occupancy-mask dual-issue loop (issue order and round-robin
/// evolution identical to the single-phase scheduler).
fn issue(ctx: &FrontCtx, sm: &mut Sm) {
    let nw = sm.warps.len();
    let slot_mask = (1u64 << nw) - 1;
    let mut issued = 0;
    let mut probe: u32 = 0;
    while issued < ctx.cfg.issue_width && probe < nw as u32 {
        let occ = sm.occupied;
        if occ == 0 {
            break;
        }
        // Advance `probe` over empty slots in one step: rotate the
        // occupancy mask so the current probe position is bit 0, then
        // count the zeros below the next live slot. Each skipped empty
        // slot still consumes one probe, exactly as a slot-by-slot scan
        // would, so the issue order and the round-robin pointer evolve
        // identically.
        let pos = (sm.rr + probe as usize) % nw;
        let rot = ((occ >> pos) | (occ << (nw - pos))) & slot_mask;
        probe += rot.trailing_zeros();
        if probe >= nw as u32 {
            break;
        }
        let idx = (sm.rr + probe as usize) % nw;
        probe += 1;
        let ready = matches!(
            sm.warps[idx].as_ref().map(|w| &w.state),
            Some(WarpState::Ready { at }) if *at <= ctx.now
        );
        if !ready {
            continue;
        }
        let mut warp = sm.warps[idx].take().expect("ready warp");
        let outcome = exec_warp(ctx, sm, &mut warp);
        let block_index = warp.block_index;
        sm.warps[idx] = Some(warp);
        match outcome {
            Ok(Outcome::Issued) => {
                issued += 1;
                sm.rr = idx + 1;
            }
            Ok(Outcome::Stalled) => {}
            Ok(Outcome::Exited) => {
                issued += 1;
                sm.rr = idx + 1;
                try_retire_warp(ctx, sm, idx, block_index);
            }
            Err(e) => {
                // Defer: Phase B applies this SM's earlier events, then
                // aborts the launch — the single-phase abort point.
                sm.front.error = Some(e);
                return;
            }
        }
    }
}

/// Retires a `Done` warp, completing its block when it was the last one.
/// A warp still draining memory traffic stays resident (as `WaitMem`);
/// the prepass retries once its responses land.
fn try_retire_warp(ctx: &FrontCtx, sm: &mut Sm, idx: usize, block_index: usize) {
    let ready = matches!(
        sm.warps[idx].as_ref(),
        Some(w) if matches!(w.state, WarpState::Done)
            && w.pending_loads == 0
            && w.outstanding_stores == 0
    );
    if !ready {
        return;
    }
    let (live_now, released) = {
        let block = sm.blocks[block_index]
            .as_mut()
            .expect("warp's block resident");
        block.live_warps -= 1;
        (block.live_warps, block.barrier_arrived)
    };
    if live_now > 0 && released >= live_now {
        release_barrier(ctx, sm, block_index);
    }
    if live_now == 0 {
        finish_block(ctx, sm, block_index);
    }
}

fn release_barrier(ctx: &FrontCtx, sm: &mut Sm, block_index: usize) {
    let (slots, block_slot_global) = {
        let block = sm.blocks[block_index].as_mut().expect("resident");
        block.barrier_arrived = 0;
        (block.warp_slots.clone(), block.block_slot_global)
    };
    for slot in slots {
        if let Some(w) = sm.warps[slot].as_mut() {
            if matches!(w.state, WarpState::WaitBarrier) {
                w.state = WarpState::Ready { at: ctx.now + 5 };
            }
        }
    }
    if ctx.detect {
        sm.front.events.push(PendingEvent::Barrier {
            block_slot: block_slot_global,
        });
    }
}

fn finish_block(ctx: &FrontCtx, sm: &mut Sm, block_index: usize) {
    let block = sm.blocks[block_index].take().expect("resident");
    let regs = u32::from(ctx.program.num_regs()) * ctx.threads_per_block;
    for slot in block.warp_slots {
        sm.warps[slot] = None;
        sm.occupied &= !(1u64 << slot);
    }
    sm.free_regs += regs;
    sm.free_shared += ctx.program.shared_bytes();
    sm.front.blocks_retired += 1;
    sm.front.dispatch = true;
}

fn count_issue(stats: &mut FrontStats, mask: u32) {
    stats.warp_instructions += 1;
    stats.thread_instructions += u64::from(mask.count_ones());
}

fn complete_alu(ctx: &FrontCtx, sm: &mut Sm, warp: &mut Warp, mask: u32) {
    warp.advance();
    warp.state = WarpState::Ready { at: ctx.now + 1 };
    count_issue(&mut sm.front.stats, mask);
}

#[allow(clippy::too_many_lines)]
fn exec_warp(ctx: &FrontCtx, sm: &mut Sm, warp: &mut Warp) -> Result<Outcome, SimError> {
    let Some((pc, mask)) = warp.fetch() else {
        warp.state = WarpState::Done;
        return Ok(Outcome::Exited);
    };
    // Copy the instruction out so the `Arc` is borrowed only briefly —
    // cloning it here put an atomic refcount round-trip on every issued
    // instruction.
    let instr = *ctx.program.fetch(pc).unwrap_or(&Instr::Exit);

    match instr {
        Instr::Mov { dst, src } => {
            for lane in lanes(mask) {
                let v = warp.operand(lane, src);
                warp.set_reg(lane, dst, v);
            }
            complete_alu(ctx, sm, warp, mask);
        }
        Instr::Alu { op, dst, a, b } => {
            for lane in lanes(mask) {
                let va = warp.operand(lane, a);
                let vb = warp.operand(lane, b);
                warp.set_reg(lane, dst, op.eval(va, vb));
            }
            complete_alu(ctx, sm, warp, mask);
        }
        Instr::Special { dst, sreg } => {
            for lane in lanes(mask) {
                let v = match sreg {
                    SpecialReg::Tid => warp.warp_in_block * ctx.cfg.warp_size + lane,
                    SpecialReg::Ntid => ctx.threads_per_block,
                    SpecialReg::Ctaid => warp.ctaid,
                    SpecialReg::Nctaid => ctx.grid_blocks,
                    SpecialReg::LaneId => lane,
                    SpecialReg::WarpId => warp.warp_in_block,
                };
                warp.set_reg(lane, dst, v);
            }
            complete_alu(ctx, sm, warp, mask);
        }
        Instr::LdParam { dst, index } => {
            let v = ctx.params[usize::from(index)];
            for lane in lanes(mask) {
                warp.set_reg(lane, dst, v);
            }
            complete_alu(ctx, sm, warp, mask);
        }
        Instr::Ld {
            dst,
            addr,
            space: Space::Shared,
            ..
        } => {
            let block = sm.blocks[warp.block_index]
                .as_ref()
                .expect("resident block");
            for lane in lanes(mask) {
                let a = addr.resolve(warp.reg(lane, addr.base));
                let idx = (a / 4) as usize;
                let v = *block.shared.get(idx).ok_or(SimError::AddressOutOfBounds {
                    addr: u64::from(a),
                    pc,
                })?;
                warp.set_reg(lane, dst, v);
            }
            warp.advance();
            warp.state = WarpState::Ready {
                at: ctx.now + u64::from(ctx.cfg.shared_latency),
            };
            count_issue(&mut sm.front.stats, mask);
        }
        Instr::St {
            src,
            addr,
            space: Space::Shared,
            ..
        } => {
            for lane in lanes(mask) {
                let a = addr.resolve(warp.reg(lane, addr.base));
                let v = warp.operand(lane, src);
                let block = sm.blocks[warp.block_index]
                    .as_mut()
                    .expect("resident block");
                let idx = (a / 4) as usize;
                *block
                    .shared
                    .get_mut(idx)
                    .ok_or(SimError::AddressOutOfBounds {
                        addr: u64::from(a),
                        pc,
                    })? = v;
            }
            warp.advance();
            warp.state = WarpState::Ready { at: ctx.now + 1 };
            count_issue(&mut sm.front.stats, mask);
        }
        Instr::Ld {
            dst,
            addr,
            space: Space::Global,
            strong,
        } => {
            return exec_global(
                ctx,
                sm,
                warp,
                pc,
                mask,
                GlobalOp::Load { dst, strong },
                addr,
            );
        }
        Instr::St {
            src,
            addr,
            space: Space::Global,
            strong,
        } => {
            return exec_global(
                ctx,
                sm,
                warp,
                pc,
                mask,
                GlobalOp::Store { src, strong },
                addr,
            );
        }
        Instr::Atom {
            op,
            dst,
            addr,
            val,
            cmp,
            scope,
        } => {
            return exec_global(
                ctx,
                sm,
                warp,
                pc,
                mask,
                GlobalOp::Atomic {
                    op,
                    dst,
                    val,
                    cmp,
                    scope,
                },
                addr,
            );
        }
        Instr::Fence { scope } => {
            warp.advance();
            warp.state = WarpState::WaitFence { end: None, scope };
            count_issue(&mut sm.front.stats, mask);
        }
        Instr::Bar => {
            if !warp.converged() {
                return Err(SimError::BarrierDivergence { pc });
            }
            warp.advance();
            warp.state = WarpState::WaitBarrier;
            count_issue(&mut sm.front.stats, mask);
            let (arrived, live) = {
                let block = sm.blocks[warp.block_index]
                    .as_mut()
                    .expect("resident block");
                block.barrier_arrived += 1;
                (block.barrier_arrived, block.live_warps)
            };
            if arrived >= live {
                // This warp is currently taken out of its slot: release
                // it directly, then the rest.
                warp.state = WarpState::Ready { at: ctx.now + 5 };
                let block = sm.blocks[warp.block_index]
                    .as_mut()
                    .expect("resident block");
                block.barrier_arrived -= 1; // this warp, handled here
                release_barrier(ctx, sm, warp.block_index);
            }
        }
        Instr::Branch {
            cond,
            if_zero,
            target,
            reconv,
        } => {
            let mut taken = 0u32;
            for lane in lanes(mask) {
                let v = warp.reg(lane, cond);
                if (v == 0) == if_zero {
                    taken |= 1 << lane;
                }
            }
            warp.branch(taken, target, pc + 1, reconv);
            warp.state = WarpState::Ready { at: ctx.now + 1 };
            count_issue(&mut sm.front.stats, mask);
        }
        Instr::Jump { target } => {
            warp.jump(target);
            warp.state = WarpState::Ready { at: ctx.now + 1 };
            count_issue(&mut sm.front.stats, mask);
        }
        Instr::Exit => {
            warp.exit_lanes(mask);
            count_issue(&mut sm.front.stats, mask);
            if warp.is_done() {
                if warp.pending_loads == 0 && warp.outstanding_stores == 0 {
                    warp.state = WarpState::Done;
                } else {
                    warp.state = WarpState::WaitMem; // drain, then retire
                }
                return Ok(Outcome::Exited);
            }
            warp.state = WarpState::Ready { at: ctx.now + 1 };
        }
        Instr::Nop => {
            warp.advance();
            warp.state = WarpState::Ready { at: ctx.now + 1 };
            count_issue(&mut sm.front.stats, mask);
        }
    }
    Ok(Outcome::Issued)
}

/// Issues one global memory instruction: stall checks, lane gather with
/// bounds checks, coalescing, L1 classification and all SM-local timing
/// (L1 LRU/invalidate, NoC queue, pending-load/store counters, warp
/// state). The shared-state half — functional memory, register
/// writebacks, the detector event, the L1-hit response events — is
/// buffered as a [`PendingAccess`] for Phase B.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn exec_global(
    ctx: &FrontCtx,
    sm: &mut Sm,
    warp: &mut Warp,
    pc: Pc,
    mask: u32,
    op: GlobalOp,
    addr: scord_isa::MemAddr,
) -> Result<Outcome, SimError> {
    let (is_store, is_atomic, strong) = match op {
        GlobalOp::Load { strong, .. } => (false, false, strong),
        GlobalOp::Store { strong, .. } => (true, false, strong),
        GlobalOp::Atomic { .. } => (true, true, true),
    };
    let use_l1 = !strong && !is_store && !is_atomic;

    // Fast stall check before any address work: an access that bypasses
    // L1 always generates at least one L2 transaction (the executed
    // mask is never empty), so when the queue is already over the
    // high-water mark it will stall no matter what it touches. Under
    // congestion a warp retries every cycle; without this check each
    // retry re-gathered and re-coalesced all 32 lane addresses. (An
    // out-of-bounds address on such a retrying access is reported
    // when the queue drains rather than during the stall — identical
    // outcome for every program that does not abort.)
    if !use_l1 && !sm.out_queue.is_empty() && sm.out_queue.len() + 1 > ctx.cfg.noc_queue {
        sm.front.stats.stall_noc_full += 1;
        warp.state = WarpState::Ready { at: ctx.now + 1 };
        return Ok(Outcome::Stalled);
    }

    // Gather lane addresses into the deferred-commit lane buffer and
    // coalesce into lines.
    let lane_start = sm.front.lane_buf.len();
    for lane in lanes(mask) {
        let a = u64::from(addr.resolve(warp.reg(lane, addr.base)));
        if a % 4 != 0 || a + 4 > ctx.mem_bytes {
            sm.front.lane_buf.truncate(lane_start);
            return Err(SimError::AddressOutOfBounds { addr: a, pc });
        }
        sm.front.lane_buf.push((lane, a));
    }
    let line_mask = u64::from(ctx.cfg.line_bytes - 1);
    sm.front.scratch.line_lanes.clear();
    for &(lane, a) in &sm.front.lane_buf[lane_start..] {
        let line = a & !line_mask;
        match sm
            .front
            .scratch
            .line_lanes
            .iter_mut()
            .find(|(l, _)| *l == line)
        {
            Some((_, lm)) => *lm |= 1 << lane,
            None => sm.front.scratch.line_lanes.push((line, 1 << lane)),
        }
    }

    // L1 classification (weak loads only).
    let mut hit_lines = 0usize;
    sm.front.scratch.to_l2.clear();
    sm.front.scratch.l1_hits.clear();
    for &(line, lm) in &sm.front.scratch.line_lanes {
        if use_l1 && sm.l1.probe(line) {
            hit_lines += 1;
            sm.front.scratch.l1_hits.push(line);
        } else {
            sm.front.scratch.to_l2.push((line, lm));
        }
    }

    // Stall checks (nothing committed yet). The queue capacity is a
    // high-water mark: a fully-scattered access (up to 32 lines) may
    // overflow an *empty* queue, otherwise it could never issue.
    if !sm.out_queue.is_empty()
        && sm.out_queue.len() + sm.front.scratch.to_l2.len() > ctx.cfg.noc_queue
    {
        sm.front.lane_buf.truncate(lane_start);
        sm.front.stats.stall_noc_full += 1;
        warp.state = WarpState::Ready { at: ctx.now + 1 };
        return Ok(Outcome::Stalled);
    }
    if ctx.detect {
        let pure_l1_hit = use_l1 && sm.front.scratch.to_l2.is_empty() && hit_lines > 0;
        if pure_l1_hit && ctx.toggles.lhd && !ctx.lhd_open {
            sm.front.lane_buf.truncate(lane_start);
            sm.front.stats.stall_lhd += 1;
            warp.state = WarpState::Ready { at: ctx.now + 1 };
            return Ok(Outcome::Stalled);
        }
    }

    // ---- commit (SM-local half; the rest is deferred) -----------------
    count_issue(&mut sm.front.stats, mask);
    let who = Accessor {
        sm: sm.id,
        block_slot: sm.blocks[warp.block_index]
            .as_ref()
            .expect("resident block")
            .block_slot_global,
        warp_slot: warp.warp_slot,
    };

    let needs_old_value = matches!(
        op,
        GlobalOp::Load { .. } | GlobalOp::Atomic { dst: Some(_), .. }
    );
    let mut l1_hit_count = 0u32;
    for i in 0..sm.front.scratch.l1_hits.len() {
        let line = sm.front.scratch.l1_hits[i];
        let _ = sm.l1.access(line, false, false);
        sm.front.stats.l1_hits += 1;
        warp.pending_loads += 1;
        l1_hit_count += 1;
    }
    let hdr = if ctx.toggles.noc {
        ctx.cfg.detection_header_bytes
    } else {
        0
    };
    for i in 0..sm.front.scratch.to_l2.len() {
        let (line, lm) = sm.front.scratch.to_l2[i];
        if use_l1 {
            sm.front.stats.l1_misses += 1;
        }
        if is_store && !is_atomic {
            sm.l1.invalidate(line); // global write-evict
        }
        let lanes_here = lm.count_ones();
        let bytes = 16
            + hdr
            + if is_atomic {
                8 * lanes_here
            } else if is_store {
                ctx.cfg.line_bytes
            } else {
                0
            };
        let flits = bytes.div_ceil(ctx.cfg.flit_bytes);
        if needs_old_value {
            warp.pending_loads += 1;
        } else {
            warp.outstanding_stores += 1;
        }
        sm.out_queue.push_back(Packet {
            line_addr: line,
            write: is_store,
            atomic_lanes: if is_atomic { lanes_here } else { 0 },
            metadata: false,
            needs_response: true,
            is_store_ack: !needs_old_value,
            sm: sm.id,
            warp: warp.warp_slot,
            flits,
            ready_at: 0,
            l1_fill: use_l1,
            ghost: false,
        });
    }
    sm.front.events.push(PendingEvent::Access(PendingAccess {
        warp_slot: warp.warp_slot,
        op,
        pc,
        strong,
        who,
        lanes: (lane_start as u32, sm.front.lane_buf.len() as u32),
        l1_hits: l1_hit_count,
    }));

    warp.advance();
    warp.state = if warp.pending_loads > 0 {
        WarpState::WaitMem
    } else {
        WarpState::Ready { at: ctx.now + 1 }
    };
    Ok(Outcome::Issued)
}
