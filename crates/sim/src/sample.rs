//! Sampled-SM extrapolation for paper-scale runs.
//!
//! Simulating every SM of a large configuration in detail is what makes
//! paper-scale inputs (tens of millions of elements) take hours. Sampled
//! mode ([`crate::GpuConfig::sample_sms`] = K > 0) builds only K detailed
//! SMs and runs the *full grid* on them, so functional results — final
//! memory contents, races detected — are exact. What the missing
//! `N − K` SMs would have contributed is their *memory traffic*: without
//! it the shared L2/DRAM/NoC sees a fraction of the real load and the
//! sampled SMs run unrealistically fast. This module restores that load
//! statistically.
//!
//! ## Ghost traffic
//!
//! Every real packet the NoC routes is observed here and accrues a debt
//! of `N − K` (each detailed SM stands for `N/K` SMs). Whenever the debt
//! reaches K, one *ghost packet* is injected: a read-only clone of the
//! current real packet (same flit size — the demand model is calibrated
//! from the sampled set), displaced a few hundred lines so it lands on a
//! different partition/bank the way another SM's concurrent access
//! would, and marked `needs_response = false` so it loads the
//! interconnect without creating a warp response. The steady-state
//! ghost rate is `(N − K)/K` ghosts per real packet — the traffic ratio
//! of the machine being modelled.
//!
//! Ghosts model *contention*, not *demand*: because the whole grid
//! executes on the K detailed SMs, the real packet stream already
//! carries the full machine's memory demand. Ghosts therefore only add
//! the per-cycle port pressure the extra SMs would create — they
//! compete for the per-partition ingest link (`rx_free_at`, one packet
//! per cycle, stalling in a backlog stash exactly like the un-simulated
//! SMs' out-queues would), occupy L2 lookup slots and count NoC flits —
//! but they are tagged [`Packet::ghost`] so the memory side can account
//! real service busy-time separately, and they never write (a dirty
//! ghost line would manufacture DRAM writebacks the real machine does
//! not perform). Ghost generation runs in the serial NoC-arbitration
//! step of Phase B with a deterministic round-robin replica cursor, so
//! sampled runs keep the byte-identical determinism contract across
//! host thread counts.
//!
//! ## Extrapolation and its error bound
//!
//! Runtime on K SMs decomposes into a compute-bound and a memory-bound
//! term, and only the first scales with SM count:
//!
//! * **compute term** `measured × K / N` — issue/execute work spread
//!   over `N/K`× the SMs;
//! * **memory term** — the busiest partition's real (non-ghost) service
//!   busy-time, `max over partitions of max(L2 busy, DRAM busy)`. The
//!   full grid ran, so this is already the full machine's demand; a
//!   memory-bound kernel takes this long no matter how many SMs it has.
//!
//! The extrapolated cycle count is `max(compute, memory)`. The error
//! bound reported with every extrapolated number
//! ([`SampleReport::error_bound_pct`]) charges:
//!
//! * **wave quantization** — the grid fills K SMs a whole number of
//!   waves at a time; when `⌈G/(K·B)⌉·K` and `⌈G/(N·B)⌉·N` (B = blocks
//!   per SM) differ, the tail wave is under-occupied differently in the
//!   two machines;
//! * **SM imbalance** — if the detailed SMs retired visibly different
//!   instruction counts, the sample is not representative of a uniform
//!   machine; half the relative spread is charged;
//! * **term balance** — `max()` under-estimates when the two terms are
//!   comparable (the machine overlaps compute with memory imperfectly);
//!   up to 10%, scaled by `min(compute, memory)/max(compute, memory)`.
//!
//! A flat 2% model floor covers what the model cannot capture
//! (row-buffer locality of the true interleaved address streams,
//! inter-SM L1 effects). Sampled numbers are excluded from all paper
//! tables and only ever appear alongside this bound.

use std::collections::VecDeque;

use crate::gpu::Packet;
use crate::GpuConfig;

/// Per-replica line displacement: a prime larger than the channel count
/// and the lines-per-row, so each replica's ghosts de-align from the
/// template's partition and DRAM row without leaving the data region.
const GHOST_STRIDE_LINES: u64 = 311;

/// State of the sampled-SM traffic model. Owned by [`crate::Gpu`] only
/// when [`crate::GpuConfig::sample_sms`] is non-zero; all methods run in
/// the serial part of Phase B.
#[derive(Debug)]
pub(crate) struct SampleModel {
    /// `num_sms` of the machine being modelled.
    total_sms: u32,
    /// Detailed SMs actually built (`sample_sms`).
    detailed: u32,
    /// Outstanding ghost debt in units of 1/K packets.
    debt: u64,
    /// Generated ghosts awaiting a free partition ingest link. Drained
    /// by the NoC step one packet per partition per cycle.
    pub(crate) stash: VecDeque<Packet>,
    /// Round-robin replica cursor (which un-simulated SM the next ghost
    /// stands for).
    replica_rr: u64,
    real_packets: u64,
    ghost_packets: u64,
    /// Per-detailed-SM retired warp instructions (imbalance bound).
    sm_insts: Vec<u64>,
}

impl SampleModel {
    pub(crate) fn new(total_sms: u32, detailed: u32) -> SampleModel {
        SampleModel {
            total_sms,
            detailed,
            debt: 0,
            stash: VecDeque::new(),
            replica_rr: 0,
            real_packets: 0,
            ghost_packets: 0,
            sm_insts: vec![0; detailed as usize],
        }
    }

    /// Resets per-launch state (launch boundaries reset statistics, and
    /// the ghost RNG must restart for launch-to-launch determinism).
    pub(crate) fn reset(&mut self) {
        self.debt = 0;
        self.stash.clear();
        self.replica_rr = 0;
        self.real_packets = 0;
        self.ghost_packets = 0;
        self.sm_insts.fill(0);
    }

    /// Records one real packet routed by the NoC this cycle: it becomes
    /// the template of the ghosts it owes — the `(N − K)/K` debt accrues
    /// and whole ghosts generate into the stash as it crosses K.
    /// `span_lines` is the device data region in lines; ghost addresses
    /// stay inside it so partition routing sees realistic addresses.
    pub(crate) fn observe(&mut self, pkt: &Packet, span_lines: u64, line_bytes: u64) {
        self.real_packets += 1;
        self.debt += u64::from(self.total_sms - self.detailed);
        let k = u64::from(self.detailed);
        while self.debt >= k {
            self.debt -= k;
            if let Some(g) = self.make_ghost(pkt, span_lines, line_bytes) {
                self.stash.push_back(g);
                self.ghost_packets += 1;
            }
        }
    }

    /// `true` while generated ghosts are still waiting for a free
    /// partition link — the quiescence skip must not jump over cycles in
    /// which the backlog would drain.
    pub(crate) fn has_backlog(&self) -> bool {
        !self.stash.is_empty()
    }

    /// Accumulates one detailed SM's Phase-A instruction delta (the
    /// imbalance input of the error bound).
    pub(crate) fn record_sm_insts(&mut self, sm: usize, warp_instructions: u64) {
        self.sm_insts[sm] += warp_instructions;
    }

    /// Builds one ghost from the template packet (`None` only when the
    /// span is empty). Replicas are assigned round-robin over the
    /// un-simulated SMs, so each replica's ghost substream follows the
    /// real packet stream in order — preserving its DRAM row locality —
    /// at its own fixed displacement.
    fn make_ghost(
        &mut self,
        template: &Packet,
        span_lines: u64,
        line_bytes: u64,
    ) -> Option<Packet> {
        if span_lines == 0 {
            return None;
        }
        // Replica index 1..N−K: which un-simulated SM this ghost stands
        // for. A small per-replica displacement keeps the ghost near the
        // template — on a different partition and DRAM row, but inside
        // the working set the detailed SMs (running the full grid)
        // already stream through. That is deliberate: ghosts provide
        // port/link contention, while the memory *demand* of the extra
        // SMs is already in the real stream.
        let replica = 1 + self.replica_rr % u64::from(self.total_sms - self.detailed);
        self.replica_rr += 1;
        let line_index = template.line_addr / line_bytes;
        let ghost_index = (line_index + replica * GHOST_STRIDE_LINES) % span_lines;
        let mut ghost = *template;
        ghost.line_addr = ghost_index * line_bytes;
        ghost.needs_response = false;
        ghost.is_store_ack = false;
        ghost.l1_fill = false;
        ghost.metadata = false;
        // Read-only: a dirty ghost line would turn into DRAM writebacks
        // the modelled machine never performs.
        ghost.write = false;
        ghost.atomic_lanes = 0;
        ghost.ghost = true;
        Some(ghost)
    }

    /// Builds the post-launch report (see [`SampleReport`]).
    /// `memory_term` is the busiest partition's real (non-ghost) service
    /// busy-time, measured by the memory side during the run.
    pub(crate) fn report(
        &self,
        cfg: &GpuConfig,
        measured_cycles: u64,
        grid_blocks: u32,
        memory_term: u64,
    ) -> SampleReport {
        let k = u64::from(self.detailed);
        let n = u64::from(self.total_sms);
        let bps = u64::from(cfg.blocks_per_sm.max(1));
        let grid = u64::from(grid_blocks.max(1));
        // Wave quantization: how differently the tail wave under-fills
        // the sampled vs the full machine.
        let w_k = grid.div_ceil(k * bps);
        let w_n = grid.div_ceil(n * bps);
        let cap_k = (w_k * k) as f64;
        let cap_n = (w_n * n) as f64;
        let e_wave = (cap_k - cap_n).abs() / cap_k.max(1.0);
        // SM imbalance: half the relative spread of retired instructions
        // across the detailed SMs.
        let max = self.sm_insts.iter().copied().max().unwrap_or(0) as f64;
        let min = self.sm_insts.iter().copied().min().unwrap_or(0) as f64;
        let mean = if self.sm_insts.is_empty() {
            0.0
        } else {
            self.sm_insts.iter().copied().sum::<u64>() as f64 / self.sm_insts.len() as f64
        };
        let e_imb = if mean > 0.0 {
            (max - min) / (2.0 * mean)
        } else {
            0.0
        };
        // Two-term estimate: compute work spreads over N/K× the SMs; the
        // memory system's real service demand does not shrink at all.
        let compute_term = measured_cycles.saturating_mul(k) / n;
        let extrapolated = compute_term.max(memory_term);
        // max() under-estimates when the terms are comparable (imperfect
        // compute/memory overlap): charge up to 10%, scaled by how close
        // the terms are.
        let hi = compute_term.max(memory_term) as f64;
        let e_balance = if hi > 0.0 {
            compute_term.min(memory_term) as f64 / hi * 0.10
        } else {
            0.0
        };
        SampleReport {
            detailed_sms: self.detailed,
            total_sms: self.total_sms,
            measured_cycles,
            compute_term_cycles: compute_term,
            memory_term_cycles: memory_term,
            extrapolated_cycles: extrapolated,
            error_bound_pct: (e_wave + e_imb + e_balance) * 100.0 + 2.0,
            real_packets: self.real_packets,
            ghost_packets: self.ghost_packets,
        }
    }
}

/// What a sampled launch ([`crate::GpuConfig::sample_sms`] > 0) reports
/// next to its extrapolated numbers. Returned by
/// [`crate::Gpu::sample_report`]; `None` on full-detail runs.
///
/// Every consumer displaying [`extrapolated_cycles`] must display
/// [`error_bound_pct`] beside it — extrapolated numbers never appear
/// bare, and never in paper tables.
///
/// [`extrapolated_cycles`]: SampleReport::extrapolated_cycles
/// [`error_bound_pct`]: SampleReport::error_bound_pct
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleReport {
    /// Detailed SMs simulated (`sample_sms`).
    pub detailed_sms: u32,
    /// SMs of the machine being modelled (`num_sms`).
    pub total_sms: u32,
    /// Raw cycles of the K-SM run (full grid on K SMs under ghost load).
    pub measured_cycles: u64,
    /// The scaling term: `measured × K / N` — issue/execute work spread
    /// over the full machine's SMs.
    pub compute_term_cycles: u64,
    /// The non-scaling term: the busiest partition's real (non-ghost)
    /// L2/DRAM service busy-time. The full grid executed, so this is
    /// the full machine's memory demand already.
    pub memory_term_cycles: u64,
    /// Estimated full-machine cycles:
    /// `max(compute_term_cycles, memory_term_cycles)`.
    pub extrapolated_cycles: u64,
    /// Error bound in percent: wave-quantization term + SM-imbalance
    /// term + term-balance term + a flat 2% model floor (see the module
    /// docs for the math).
    pub error_bound_pct: f64,
    /// Real packets the NoC routed from detailed SMs.
    pub real_packets: u64,
    /// Ghost packets injected on behalf of the un-simulated SMs.
    pub ghost_packets: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_packet(line_addr: u64, flits: u32) -> Packet {
        Packet {
            line_addr,
            write: false,
            atomic_lanes: 0,
            metadata: false,
            needs_response: true,
            is_store_ack: false,
            sm: 0,
            warp: 0,
            flits,
            ready_at: 0,
            l1_fill: true,
            ghost: false,
        }
    }

    #[test]
    fn ghost_rate_matches_machine_ratio() {
        // K=5 of N=15: each real packet owes 10/5 = 2 ghosts.
        let mut m = SampleModel::new(15, 5);
        for i in 0..100u64 {
            m.observe(&dummy_packet(i * 128, 3), 1 << 20, 128);
        }
        assert_eq!(m.real_packets, 100);
        assert_eq!(m.ghost_packets, 200, "(N-K)/K ghosts per real packet");
        assert_eq!(m.stash.len(), 200, "ghosts wait in the backlog stash");
        assert!(m.has_backlog());
    }

    #[test]
    fn ghosts_are_sanitized_clones_within_span() {
        let mut m = SampleModel::new(4, 2);
        m.observe(&dummy_packet(7 * 128, 5), 1024, 128);
        let g = m.stash.pop_front().expect("debt 2 ≥ k 2");
        assert!(!g.needs_response && !g.l1_fill && !g.metadata);
        assert!(g.ghost, "ghosts are tagged for the busy accounting");
        assert!(!g.write && g.atomic_lanes == 0, "ghosts never dirty lines");
        assert_eq!(g.flits, 5, "demand model keeps the template's size");
        assert_eq!(g.line_addr % 128, 0);
        assert!(g.line_addr / 128 < 1024, "ghost stays inside the span");
        assert_ne!(g.line_addr, 7 * 128, "ghost is displaced from template");
    }

    #[test]
    fn reset_restores_launch_determinism() {
        let run = |m: &mut SampleModel| {
            for i in 0..20u64 {
                m.observe(&dummy_packet(i * 256, 2), 4096, 128);
            }
            m.stash.iter().map(|g| g.line_addr).collect::<Vec<_>>()
        };
        let mut m = SampleModel::new(15, 5);
        let first = run(&mut m);
        m.reset();
        assert!(!m.has_backlog(), "reset clears the backlog");
        let second = run(&mut m);
        assert_eq!(first, second, "per-launch ghost streams are identical");
    }

    #[test]
    fn report_math_holds() {
        let cfg = GpuConfig::paper_default(); // N=15, bps=8
        let mut m = SampleModel::new(cfg.num_sms, 5);
        for s in 0..5 {
            m.record_sm_insts(s, 1000);
        }
        // 120 blocks: 3 waves on 5 SMs (cap 120), 1 wave on 15 (cap 120)
        // → zero wave error; perfectly balanced SMs → zero imbalance;
        // memory term 0 → compute-bound, no balance term.
        let r = m.report(&cfg, 3000, 120, 0);
        assert_eq!(r.compute_term_cycles, 1000, "measured × K/N");
        assert_eq!(r.extrapolated_cycles, 1000, "compute-bound");
        assert!(
            (r.error_bound_pct - 2.0).abs() < 1e-9,
            "only the model floor"
        );
        // A dominant memory term wins the max() and charges the balance
        // term: min/max = 1000/5000 → 0.2 × 10% = +2% on the floor.
        let r = m.report(&cfg, 3000, 120, 5000);
        assert_eq!(r.memory_term_cycles, 5000);
        assert_eq!(r.extrapolated_cycles, 5000, "memory-bound");
        assert!((r.error_bound_pct - 4.0).abs() < 1e-9);
        // Equal terms charge the full 10% balance term.
        let r = m.report(&cfg, 3000, 120, 1000);
        assert!((r.error_bound_pct - 12.0).abs() < 1e-9);
        // 121 blocks: 4 waves × 5 SMs = 20 SM·waves vs 2 waves × 15 SMs
        // = 30 SM·waves: |20−30|/20 = 50% wave term on top of the floor.
        let r = m.report(&cfg, 3000, 121, 0);
        assert!((r.error_bound_pct - 52.0).abs() < 1e-9);
        // Imbalanced SMs raise the bound: spread 1000 over mean 1500
        // → +(2000−1000)/(2·1500) ≈ 33.3% (240 blocks keeps both
        // machines at 30 SM·waves, so no wave term).
        let mut m = SampleModel::new(cfg.num_sms, 2);
        m.record_sm_insts(0, 1000);
        m.record_sm_insts(1, 2000);
        let r = m.report(&cfg, 1000, 240, 0);
        assert!((r.error_bound_pct - (2.0 + 100.0 / 3.0)).abs() < 1e-6);
    }
}
