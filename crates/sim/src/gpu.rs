//! The whole-GPU cycle-level model: kernel launch and block dispatch, warp
//! scheduling and SIMT execution, the coalescer, L1/L2 caches, the crossbar
//! NoC, GDDR5 channels, and the race-detector attachment.

use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use scord_core::{
    AccessKind, Accessor, AtomKind, FlatMap, MemAccess, RaceLog, ScordDetector, Trace,
};
use scord_isa::{AtomOp, Instr, Pc, Program, Scope, Space, SpecialReg};

use crate::{
    Cache, CacheOutcome, DetectorEvent, DetectorUnit, DeviceMemory, DramChannel, DramRequest,
    GpuConfig, SimStats, Sm, SmBlock, Warp, WarpState,
};

/// A request packet travelling from an SM (or the race detector) to a memory
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// 128-byte-aligned line address.
    pub line_addr: u64,
    /// `true` for stores/atomics (dirties the L2 line).
    pub write: bool,
    /// Number of lanes serialized on an atomic (0 for plain accesses).
    pub atomic_lanes: u32,
    /// `true` for detector-metadata traffic.
    pub metadata: bool,
    /// Whether a response must be delivered.
    pub needs_response: bool,
    /// `true` when the response is a store acknowledgement (drains the
    /// warp's store counter rather than its load counter).
    pub is_store_ack: bool,
    /// Origin SM.
    pub sm: u8,
    /// Origin warp slot.
    pub warp: u8,
    /// Request size in flits.
    pub flits: u32,
    /// Cycle at which the packet is available at the partition.
    pub ready_at: u64,
    /// Fill the origin SM's L1 with this line when the response arrives.
    pub l1_fill: bool,
}

#[derive(Debug)]
enum Ev {
    /// A memory response reaching a warp.
    WarpResponse {
        sm: usize,
        warp: usize,
        is_store_ack: bool,
        l1_fill: Option<u64>,
    },
    /// A DRAM read completing at a partition.
    DramDone { part: usize, req: DramRequest },
}

#[derive(Debug)]
struct HeapItem {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Partition {
    l2: Cache,
    in_queue: VecDeque<Packet>,
    rx_free_at: u64,
    l2_free_at: u64,
    dram: DramChannel,
    /// Packets waiting on an in-flight DRAM read, keyed by line address.
    /// Flat table + waiter-`Vec` pool: miss handling and fill wakeup sit on
    /// the per-access hot path, so neither should allocate in steady state.
    pending_fills: FlatMap<Vec<Packet>>,
    /// Spare waiter lists recycled by fill wakeups (capacity retained).
    fill_pool: Vec<Vec<Packet>>,
}

/// Reusable per-access buffers for [`Gpu::exec_global`]. One warp memory
/// instruction used to allocate four fresh `Vec`s; these live on the `Gpu`
/// and are taken/restored around each access instead.
#[derive(Debug, Default)]
struct Scratch {
    /// `(lane, byte address)` per active lane.
    lane_addrs: Vec<(u32, u64)>,
    /// Coalesced `(line address, lane mask)` transactions.
    line_lanes: Vec<(u64, u32)>,
    /// Transactions missing L1 (or bypassing it).
    to_l2: Vec<(u64, u32)>,
    /// Lines hitting L1.
    l1_hits: Vec<u64>,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog expired — usually a deadlocked spin loop or barrier.
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
    },
    /// `bar.sync` executed by a divergent warp.
    BarrierDivergence {
        /// Offending instruction.
        pc: Pc,
    },
    /// A lane accessed memory outside the device allocation.
    AddressOutOfBounds {
        /// The faulting byte address.
        addr: u64,
        /// Offending instruction.
        pc: Pc,
    },
    /// A raw memory access (no instruction context) fell outside the device
    /// allocation — e.g. a host-side [`DeviceMemory::try_read_word`]. The
    /// 64-bit address is preserved instead of being truncated to 32 bits.
    AddressOutOfRange {
        /// The faulting byte address.
        addr: u64,
    },
    /// Bad launch parameters.
    Launch(String),
    /// A [`GpuConfig`] violating a hard machine limit (metadata field
    /// widths, packet id widths) — see [`GpuConfig::validate`].
    Config(String),
    /// The race detector rejected an event (malformed accessor, address,
    /// or geometry — see [`scord_core::DetectorError`]).
    Detector(scord_core::DetectorError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
            SimError::BarrierDivergence { pc } => {
                write!(f, "barrier executed by divergent warp at pc {pc}")
            }
            SimError::AddressOutOfBounds { addr, pc } => {
                write!(f, "global access at pc {pc} out of bounds: 0x{addr:x}")
            }
            SimError::AddressOutOfRange { addr } => {
                write!(f, "memory address out of range: 0x{addr:x}")
            }
            SimError::Launch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Detector(err) => write!(f, "detector rejected event: {err}"),
        }
    }
}

impl Error for SimError {}

impl From<scord_core::DetectorError> for SimError {
    fn from(err: scord_core::DetectorError) -> Self {
        SimError::Detector(err)
    }
}

enum Outcome {
    Issued,
    Stalled,
    Exited,
}

/// The simulated GPU.
///
/// ```
/// use scord_isa::KernelBuilder;
/// use scord_sim::{Gpu, GpuConfig};
///
/// // out[gtid] = gtid
/// let mut k = KernelBuilder::new("iota", 1);
/// let out = k.ld_param(0);
/// let gtid = k.global_tid();
/// let addr = k.index_addr(out, gtid, 4);
/// k.st_global(addr, 0, gtid);
/// k.exit();
/// let program = k.finish().unwrap();
///
/// let mut gpu = Gpu::new(GpuConfig::paper_default());
/// let buf = gpu.mem_mut().alloc_words(128);
/// let stats = gpu.launch(&program, 2, 64, &[buf.addr()]).unwrap();
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.mem().read_word(buf.word_addr(100)), 100);
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    mem: DeviceMemory,
    sms: Vec<Sm>,
    parts: Vec<Partition>,
    detector: Option<DetectorUnit>,
    stats: SimStats,
    heap: BinaryHeap<HeapItem>,
    seq: u64,
    now: u64,
    max_cycles: u64,
    // Per-launch state. `Arc` (not `Rc`) keeps the whole `Gpu` `Send`, so
    // independent simulations can be sharded across host threads.
    program: Option<Arc<Program>>,
    params: Vec<u32>,
    grid_blocks: u32,
    threads_per_block: u32,
    warps_per_block: u32,
    next_block: u32,
    blocks_live: u32,
    noc_rr: usize,
    scratch: Scratch,
    /// `true` while next cycle's block dispatch might place a block: set at
    /// launch and whenever a block retires (freeing resources), kept set
    /// while a dispatch pass places anything (the pass is capped at one
    /// block per SM per cycle). When clear, dispatch cannot progress until
    /// a block finishes — which lets the quiescence skip ignore it.
    dispatch_hint: bool,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("cfg", &self.cfg)
            .field("now", &self.now)
            .field("blocks_live", &self.blocks_live)
            .finish()
    }
}

impl Gpu {
    /// Builds a GPU (and its race detector, when
    /// [`crate::DetectionMode`] says so) from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates a hard machine limit (see
    /// [`GpuConfig::validate`]); use [`Gpu::try_new`] for a recoverable
    /// [`SimError::Config`].
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a GPU, returning [`SimError::Config`] instead of panicking on
    /// a geometry the metadata field widths cannot represent.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] from [`GpuConfig::validate`].
    pub fn try_new(cfg: GpuConfig) -> Result<Self, SimError> {
        Self::try_with_detector_factory(cfg, |dc| Box::new(ScordDetector::new(dc)))
    }

    /// Builds a GPU with a custom detector (used to attach the Table VIII
    /// baseline models to the full timing simulation).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates a hard machine limit (see
    /// [`GpuConfig::validate`]); use [`Gpu::try_with_detector_factory`] for
    /// a recoverable [`SimError::Config`].
    pub fn with_detector_factory(
        cfg: GpuConfig,
        factory: impl FnOnce(scord_core::DetectorConfig) -> Box<dyn scord_core::Detector>,
    ) -> Self {
        Self::try_with_detector_factory(cfg, factory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a GPU with a custom detector, returning [`SimError::Config`]
    /// instead of panicking on an unrepresentable geometry.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] from [`GpuConfig::validate`].
    pub fn try_with_detector_factory(
        cfg: GpuConfig,
        factory: impl FnOnce(scord_core::DetectorConfig) -> Box<dyn scord_core::Detector>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let detector = cfg
            .detector_config()
            .map(|dc| DetectorUnit::with_faults(factory(dc), cfg.detector_queue, cfg.fault));
        let sms = (0..cfg.num_sms)
            .map(|i| {
                Sm::new(
                    i as u8,
                    cfg.warps_per_sm,
                    cfg.blocks_per_sm,
                    Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
                    cfg.regs_per_sm,
                    cfg.shared_mem_per_sm,
                )
            })
            .collect();
        let parts = (0..cfg.channels)
            .map(|_| Partition {
                l2: Cache::new(cfg.l2_slice_bytes(), cfg.l2_ways, cfg.line_bytes),
                in_queue: VecDeque::new(),
                rx_free_at: 0,
                l2_free_at: 0,
                dram: DramChannel::new(cfg.dram, cfg.banks_per_channel, cfg.row_bytes),
                pending_fills: FlatMap::new(),
                fill_pool: Vec::new(),
            })
            .collect();
        Ok(Gpu {
            mem: DeviceMemory::new(cfg.mem_bytes),
            sms,
            parts,
            detector,
            stats: SimStats::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            max_cycles: 200_000_000,
            cfg,
            program: None,
            params: Vec::new(),
            grid_blocks: 0,
            threads_per_block: 0,
            warps_per_block: 0,
            next_block: 0,
            blocks_live: 0,
            noc_rr: 0,
            scratch: Scratch::default(),
            dispatch_hint: true,
        })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Functional device memory.
    #[must_use]
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Mutable device memory (allocation, host copies).
    pub fn mem_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    /// Sets the deadlock watchdog (cycles).
    pub fn set_max_cycles(&mut self, cycles: u64) {
        self.max_cycles = cycles;
    }

    /// The detector's accumulated race log (empty log if detection is off).
    #[must_use]
    pub fn races(&self) -> Option<&RaceLog> {
        self.detector.as_ref().map(|d| d.detector().races())
    }

    /// The event trace captured by the attached detector, when it records
    /// one (see [`scord_core::RecordingDetector`]). `None` when detection
    /// is off or the detector does not record.
    #[must_use]
    pub fn recorded_trace(&self) -> Option<&Trace> {
        self.detector.as_ref().and_then(|d| d.detector().trace())
    }

    /// Launches `program` on `grid_blocks × threads_per_block` threads and
    /// simulates to completion, returning this launch's statistics.
    ///
    /// Successive launches on one `Gpu` behave like sequential kernels of
    /// one application: caches persist, the detector's race log accumulates,
    /// but detector *state* (metadata, fence file, lock tables) is reset at
    /// the boundary — a kernel launch is a device-wide synchronization
    /// point.
    ///
    /// # Errors
    ///
    /// [`SimError::Launch`] for bad parameters; [`SimError::Timeout`],
    /// [`SimError::BarrierDivergence`] or [`SimError::AddressOutOfBounds`]
    /// for runtime failures.
    pub fn launch(
        &mut self,
        program: &Program,
        grid_blocks: u32,
        threads_per_block: u32,
        params: &[u32],
    ) -> Result<SimStats, SimError> {
        if threads_per_block == 0 || threads_per_block > self.cfg.max_threads_per_block {
            return Err(SimError::Launch(format!(
                "threads per block must be 1..={}, got {threads_per_block}",
                self.cfg.max_threads_per_block
            )));
        }
        if grid_blocks == 0 {
            return Err(SimError::Launch("grid must have at least 1 block".into()));
        }
        if params.len() != usize::from(program.num_params()) {
            return Err(SimError::Launch(format!(
                "kernel {} expects {} params, got {}",
                program.name(),
                program.num_params(),
                params.len()
            )));
        }
        let warps_per_block = threads_per_block.div_ceil(self.cfg.warp_size);
        if warps_per_block > self.cfg.warps_per_sm {
            return Err(SimError::Launch("block exceeds SM warp slots".into()));
        }
        let regs_needed = u32::from(program.num_regs()) * threads_per_block;
        if regs_needed > self.cfg.regs_per_sm {
            return Err(SimError::Launch("block exceeds SM register file".into()));
        }

        // Reset per-launch machine state (caches persist, like real HW).
        self.program = Some(Arc::new(program.clone()));
        self.params = params.to_vec();
        self.grid_blocks = grid_blocks;
        self.threads_per_block = threads_per_block;
        self.warps_per_block = warps_per_block;
        self.next_block = 0;
        self.blocks_live = 0;
        self.now = 0;
        self.seq = 0;
        self.dispatch_hint = true;
        self.heap.clear();
        self.stats = SimStats::default();
        for sm in &mut self.sms {
            sm.rr = 0;
            sm.tx_free_at = 0;
            sm.out_queue.clear();
            sm.recompute_occupied();
        }
        for p in &mut self.parts {
            p.rx_free_at = 0;
            p.l2_free_at = 0;
            p.in_queue.clear();
            p.pending_fills.clear();
            p.dram.reset();
        }
        if let Some(det) = &mut self.detector {
            det.detector_mut().on_kernel_boundary();
        }

        // Sampled once per launch so flipping the process-wide override
        // mid-simulation cannot affect an in-flight run. Results are
        // byte-identical either way (the skip only jumps over cycles in
        // which no component can make progress, replicating their per-cycle
        // bookkeeping); skipping is the default because stall-heavy phases
        // dominate wall-clock otherwise.
        let skip = self.cfg.cycle_skip && crate::cycle_skip_enabled();
        while !self.finished() {
            let busy = self.tick()?;
            if self.now > self.max_cycles {
                return Err(SimError::Timeout { cycles: self.now });
            }
            // The skip scan ([`Gpu::next_wake`]) costs a pass over every
            // resident warp and queue, so only attempt it after a tick that
            // made no observable progress. Deferring a possible jump by one
            // busy tick is byte-identical: that tick replicates exactly the
            // per-cycle bookkeeping the jump would have accounted for.
            if skip && !busy && !self.finished() {
                self.skip_idle_cycles();
            }
        }

        self.stats.cycles = self.now;
        if let Some(det) = &self.detector {
            self.stats.unique_races = det.detector().races().unique_count();
            self.stats.total_races = det.detector().races().total_count();
            self.stats.faults_injected = det.fault_stats().map_or(0, |s| s.total());
        }
        Ok(self.stats)
    }

    fn finished(&self) -> bool {
        self.next_block >= self.grid_blocks
            && self.blocks_live == 0
            && self.heap.is_empty()
            && self.sms.iter().all(|s| s.out_queue.is_empty())
            && self.parts.iter().all(|p| {
                p.in_queue.is_empty() && p.pending_fills.is_empty() && p.dram.idle(self.now)
            })
            && self.detector.as_ref().is_none_or(DetectorUnit::is_idle)
    }

    /// Earliest future cycle at which any component can make progress, or
    /// `u64::MAX` when nothing ever will (deadlock — the watchdog handles
    /// it). Undershooting is always safe (the skipped-to cycle simply makes
    /// no progress); overshooting would change results, so every bound here
    /// is conservative:
    ///
    /// * the event heap's minimum (memory responses, DRAM completions);
    /// * block dispatch, whenever it might still place a block;
    /// * each resident warp's wake time — `Ready { at }`, a timed fence, or
    ///   "next cycle" for a fence whose drain already completed (the
    ///   prepass arms it one cycle later);
    /// * each SM with queued NoC traffic: its injection link and the head
    ///   packet's target-partition link;
    /// * each partition with queued L2 traffic: the L2 port and the head
    ///   packet's arrival time;
    /// * each non-idle DRAM channel: its busy-until horizon;
    /// * the detector whenever its queue is non-empty (it consumes events
    ///   every cycle).
    fn next_wake(&self) -> u64 {
        let floor = self.now + 1;
        if self.next_block < self.grid_blocks && self.dispatch_hint {
            return floor;
        }
        if self.detector.as_ref().is_some_and(|d| !d.is_idle()) {
            return floor;
        }
        let mut t = u64::MAX;
        if let Some(item) = self.heap.peek() {
            t = t.min(item.time.max(floor));
        }
        for sm in &self.sms {
            let mut occ = sm.occupied;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let Some(w) = sm.warps[idx].as_ref() else {
                    continue;
                };
                match w.state {
                    WarpState::Ready { at } => t = t.min(at.max(floor)),
                    WarpState::WaitFence { end: Some(end), .. } => t = t.min(end.max(floor)),
                    WarpState::WaitFence { end: None, .. }
                        if w.outstanding_stores == 0 && w.pending_loads == 0 =>
                    {
                        return floor;
                    }
                    // WaitMem / WaitBarrier / draining fences wake via the
                    // event heap or another warp's progress.
                    _ => {}
                }
            }
            if let Some(front) = sm.out_queue.front() {
                let part = self.partition_of(front.line_addr);
                let ready = sm.tx_free_at.max(self.parts[part].rx_free_at);
                t = t.min(ready.max(floor));
            }
        }
        for p in &self.parts {
            if let Some(front) = p.in_queue.front() {
                let ready = p.l2_free_at.max(front.ready_at);
                t = t.min(ready.max(floor));
            }
            if !p.dram.idle(self.now) {
                t = t.min(p.dram.busy_until().max(floor));
            }
        }
        t
    }

    /// Jumps `now` to the cycle before [`Gpu::next_wake`], replicating the
    /// per-cycle bookkeeping the skipped ticks would have performed: one
    /// memory-stall count per `WaitMem` warp per cycle, one barrier-stall
    /// count per `WaitBarrier` warp per cycle, and the NoC round-robin
    /// pointer advancing every cycle. Nothing else mutates during a
    /// no-progress cycle, so results are byte-identical to ticking through.
    /// The jump is clamped to the watchdog horizon so a deadlock times out
    /// at exactly the same cycle count as un-skipped execution.
    fn skip_idle_cycles(&mut self) {
        let target = self.next_wake();
        let jump_to = target.saturating_sub(1).min(self.max_cycles);
        if jump_to <= self.now {
            return;
        }
        let skipped = jump_to - self.now;
        let mut mem_stalled = 0u64;
        let mut barrier_stalled = 0u64;
        for sm in &self.sms {
            let mut occ = sm.occupied;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                match sm.warps[idx].as_ref().map(|w| &w.state) {
                    Some(WarpState::WaitMem) => mem_stalled += 1,
                    Some(WarpState::WaitBarrier) => barrier_stalled += 1,
                    _ => {}
                }
            }
        }
        self.stats.stalls.memory += skipped * mem_stalled;
        self.stats.stalls.barrier += skipped * barrier_stalled;
        self.noc_rr = self.noc_rr.wrapping_add(skipped as usize);
        self.stats.cycles_skipped += skipped;
        self.now = jump_to;
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(HeapItem {
            time,
            seq: self.seq,
            ev,
        });
    }

    /// Advances the machine one cycle. Returns `true` when the cycle made
    /// observable progress (an event fired, a block dispatched, an
    /// instruction issued or stalled actively, a packet moved, the L2
    /// serviced, or the detector is draining) — the signal the launch loop
    /// uses to decide whether attempting a quiescence skip is worthwhile.
    /// The flag is purely a performance hint: skipping is safe after any
    /// tick, and not skipping merely ticks through the idle span with
    /// identical bookkeeping.
    fn tick(&mut self) -> Result<bool, SimError> {
        self.now += 1;
        let insts0 = self.stats.warp_instructions;
        let flits0 = self.stats.noc_flits;
        let det0 = self.stats.detector_events;
        let l2_0 = self.stats.l2_data_hits
            + self.stats.l2_data_misses
            + self.stats.l2_md_hits
            + self.stats.l2_md_misses;
        let active_stalls0 = self.stats.stalls.noc_full + self.stats.stalls.lhd;
        let next_block0 = self.next_block;
        let drained = self.drain_events();
        self.dispatch_blocks();
        for s in 0..self.sms.len() {
            self.sm_tick(s)?;
        }
        self.noc_tick();
        for p in 0..self.parts.len() {
            self.part_tick(p);
        }
        self.detector_tick()?;
        Ok(drained
            || self.next_block != next_block0
            || self.stats.warp_instructions != insts0
            || self.stats.noc_flits != flits0
            || self.stats.detector_events != det0
            || self.stats.l2_data_hits
                + self.stats.l2_data_misses
                + self.stats.l2_md_hits
                + self.stats.l2_md_misses
                != l2_0
            || self.stats.stalls.noc_full + self.stats.stalls.lhd != active_stalls0
            || self.detector.as_ref().is_some_and(|d| !d.is_idle()))
    }

    // ---- event heap -------------------------------------------------------

    /// Fires all events due at or before `now`; returns `true` if any fired.
    fn drain_events(&mut self) -> bool {
        let mut any = false;
        while matches!(self.heap.peek(), Some(i) if i.time <= self.now) {
            any = true;
            let item = self.heap.pop().expect("peeked");
            match item.ev {
                Ev::WarpResponse {
                    sm,
                    warp,
                    is_store_ack,
                    l1_fill,
                } => {
                    if let Some(line) = l1_fill {
                        let _ = self.sms[sm].l1.access(line, false, false);
                    }
                    if let Some(w) = self.sms[sm].warps[warp].as_mut() {
                        if is_store_ack {
                            w.outstanding_stores = w.outstanding_stores.saturating_sub(1);
                        } else {
                            w.pending_loads = w.pending_loads.saturating_sub(1);
                            if w.pending_loads == 0 && matches!(w.state, WarpState::WaitMem) {
                                w.state = WarpState::Ready { at: self.now };
                            }
                        }
                    }
                }
                Ev::DramDone { part, req } => {
                    if let Some(mut waiters) = self.parts[part].pending_fills.remove(req.line_addr)
                    {
                        for pkt in waiters.drain(..) {
                            self.respond(&pkt, self.now + 4);
                        }
                        // Recycle the drained list; its capacity serves the
                        // next miss on this partition without allocating.
                        self.parts[part].fill_pool.push(waiters);
                    }
                }
            }
        }
        any
    }

    fn respond(&mut self, pkt: &Packet, time: u64) {
        if !pkt.needs_response {
            return;
        }
        let resp_flits = if pkt.is_store_ack {
            1
        } else {
            1 + self.cfg.line_bytes.div_ceil(self.cfg.flit_bytes)
        };
        self.stats.noc_flits += u64::from(resp_flits);
        let l1_fill = pkt.l1_fill.then_some(pkt.line_addr);
        self.push_event(
            time + 8 + u64::from(resp_flits),
            Ev::WarpResponse {
                sm: pkt.sm as usize,
                warp: pkt.warp as usize,
                is_store_ack: pkt.is_store_ack,
                l1_fill,
            },
        );
    }

    // ---- block dispatch ---------------------------------------------------

    fn dispatch_blocks(&mut self) {
        if self.next_block >= self.grid_blocks {
            return;
        }
        let mut dispatched = false;
        let program = self.program.clone().expect("launch in progress");
        for s in 0..self.sms.len() {
            if self.next_block >= self.grid_blocks {
                break;
            }
            let regs_needed = u32::from(program.num_regs()) * self.threads_per_block;
            let shared_needed = program.shared_bytes();
            let sm = &self.sms[s];
            if sm.free_regs < regs_needed || sm.free_shared < shared_needed {
                continue;
            }
            let Some(bslot) = sm.free_block_slot() else {
                continue;
            };
            let Some(wslots) = sm.free_warp_slots(self.warps_per_block as usize) else {
                continue;
            };
            let ctaid = self.next_block;
            self.next_block += 1;
            self.blocks_live += 1;
            dispatched = true;
            let block_slot_global = u8::try_from(s as u32 * self.cfg.blocks_per_sm + bslot as u32)
                .expect("validated: num_sms × blocks_per_sm fits the BlockID field");
            let block = SmBlock {
                ctaid,
                block_slot_global,
                warp_slots: wslots.clone(),
                live_warps: self.warps_per_block,
                barrier_arrived: 0,
                shared: vec![0; (shared_needed as usize).div_ceil(4)],
            };
            let sm = &mut self.sms[s];
            sm.free_regs -= regs_needed;
            sm.free_shared -= shared_needed;
            sm.blocks[bslot] = Some(block);
            for (wi, &slot) in wslots.iter().enumerate() {
                let lanes = (self.threads_per_block - wi as u32 * self.cfg.warp_size)
                    .min(self.cfg.warp_size);
                sm.warps[slot] = Some(Warp::new(
                    slot as u8,
                    bslot,
                    ctaid,
                    wi as u32,
                    lanes,
                    program.num_regs(),
                ));
                sm.occupied |= 1u64 << slot;
                if let Some(det) = &mut self.detector {
                    det.enqueue(DetectorEvent::WarpAssigned {
                        sm: s as u8,
                        warp_slot: slot as u8,
                    });
                }
            }
        }
        // A pass that placed a block may place another next cycle (the loop
        // caps dispatch at one block per SM per cycle); a pass that placed
        // nothing cannot succeed until a block retires and frees resources.
        self.dispatch_hint = dispatched;
    }

    // ---- SM scheduling ----------------------------------------------------

    fn sm_tick(&mut self, s: usize) -> Result<(), SimError> {
        self.sm_prepass(s);
        let nw = self.sms[s].warps.len();
        let slot_mask = (1u64 << nw) - 1;
        let mut issued = 0;
        let mut probe: u32 = 0;
        while issued < self.cfg.issue_width && probe < nw as u32 {
            let occ = self.sms[s].occupied;
            if occ == 0 {
                break;
            }
            // Advance `probe` over empty slots in one step: rotate the
            // occupancy mask so the current probe position is bit 0, then
            // count the zeros below the next live slot. Each skipped empty
            // slot still consumes one probe, exactly as the original
            // slot-by-slot scan did, so the issue order and the round-robin
            // pointer evolve identically.
            let pos = (self.sms[s].rr + probe as usize) % nw;
            let rot = ((occ >> pos) | (occ << (nw - pos))) & slot_mask;
            probe += rot.trailing_zeros();
            if probe >= nw as u32 {
                break;
            }
            let idx = (self.sms[s].rr + probe as usize) % nw;
            probe += 1;
            let ready = matches!(
                self.sms[s].warps[idx].as_ref().map(|w| &w.state),
                Some(WarpState::Ready { at }) if *at <= self.now
            );
            if !ready {
                continue;
            }
            let mut warp = self.sms[s].warps[idx].take().expect("ready warp");
            let outcome = self.exec_warp(s, &mut warp);
            let block_index = warp.block_index;
            self.sms[s].warps[idx] = Some(warp);
            match outcome? {
                Outcome::Issued => {
                    issued += 1;
                    self.sms[s].rr = idx + 1;
                }
                Outcome::Stalled => {}
                Outcome::Exited => {
                    issued += 1;
                    self.sms[s].rr = idx + 1;
                    self.try_retire_warp(s, idx, block_index);
                }
            }
        }
        Ok(())
    }

    /// Cheap per-cycle state progression: fence completion, drained exits,
    /// stall accounting. Iterates the occupancy bitmask rather than every
    /// slot; the snapshot may go stale when a retirement mid-loop clears a
    /// later bit, so each slot is still re-checked for residency (matching
    /// the original full scan's behaviour exactly).
    fn sm_prepass(&mut self, s: usize) {
        let mut occ = self.sms[s].occupied;
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let Some(w) = self.sms[s].warps[idx].as_mut() else {
                continue;
            };
            match w.state {
                WarpState::WaitFence { end: None, scope }
                    if w.outstanding_stores == 0 && w.pending_loads == 0 =>
                {
                    let latency = match scope {
                        Scope::Block => self.cfg.fence_block_latency,
                        Scope::Device => self.cfg.fence_device_latency,
                    };
                    let warp_slot = w.warp_slot;
                    w.state = WarpState::WaitFence {
                        end: Some(self.now + u64::from(latency)),
                        scope,
                    };
                    if let Some(det) = &mut self.detector {
                        det.enqueue(DetectorEvent::Fence {
                            sm: s as u8,
                            warp_slot,
                            scope,
                        });
                    }
                }
                WarpState::WaitFence {
                    end: Some(t),
                    scope: _,
                } if self.now >= t => {
                    w.state = WarpState::Ready { at: self.now };
                }
                WarpState::WaitMem => {
                    self.stats.stalls.memory += 1;
                    // A draining exited warp: retire once all traffic landed.
                    if w.pending_loads == 0 && w.outstanding_stores == 0 && w.is_done() {
                        let bidx = w.block_index;
                        w.state = WarpState::Done;
                        self.try_retire_warp(s, idx, bidx);
                    }
                }
                WarpState::WaitBarrier => self.stats.stalls.barrier += 1,
                _ => {}
            }
        }
    }

    /// Retires a `Done` warp, completing its block when it was the last one.
    /// A warp still draining memory traffic stays resident (as `WaitMem`);
    /// the prepass retries once its responses land.
    fn try_retire_warp(&mut self, s: usize, idx: usize, block_index: usize) {
        let ready = matches!(
            self.sms[s].warps[idx].as_ref(),
            Some(w) if matches!(w.state, WarpState::Done)
                && w.pending_loads == 0
                && w.outstanding_stores == 0
        );
        if !ready {
            return;
        }
        let (live_now, released) = {
            let block = self.sms[s].blocks[block_index]
                .as_mut()
                .expect("warp's block resident");
            block.live_warps -= 1;
            (block.live_warps, block.barrier_arrived)
        };
        if live_now > 0 && released >= live_now {
            self.release_barrier(s, block_index);
        }
        if live_now == 0 {
            self.finish_block(s, block_index);
        }
    }

    fn release_barrier(&mut self, s: usize, block_index: usize) {
        let (slots, block_slot_global) = {
            let block = self.sms[s].blocks[block_index].as_mut().expect("resident");
            block.barrier_arrived = 0;
            (block.warp_slots.clone(), block.block_slot_global)
        };
        for slot in slots {
            if let Some(w) = self.sms[s].warps[slot].as_mut() {
                if matches!(w.state, WarpState::WaitBarrier) {
                    w.state = WarpState::Ready { at: self.now + 5 };
                }
            }
        }
        if let Some(det) = &mut self.detector {
            det.enqueue(DetectorEvent::Barrier {
                sm: s as u8,
                block_slot: block_slot_global,
            });
        }
    }

    fn finish_block(&mut self, s: usize, block_index: usize) {
        let block = self.sms[s].blocks[block_index].take().expect("resident");
        let program = self.program.as_ref().expect("launch in progress");
        let regs = u32::from(program.num_regs()) * self.threads_per_block;
        for slot in block.warp_slots {
            self.sms[s].warps[slot] = None;
            self.sms[s].occupied &= !(1u64 << slot);
        }
        self.sms[s].free_regs += regs;
        self.sms[s].free_shared += program.shared_bytes();
        self.blocks_live -= 1;
        self.dispatch_hint = true;
    }

    // ---- instruction execution --------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec_warp(&mut self, s: usize, warp: &mut Warp) -> Result<Outcome, SimError> {
        let Some((pc, mask)) = warp.fetch() else {
            warp.state = WarpState::Done;
            return Ok(Outcome::Exited);
        };
        // Copy the instruction out so the `Arc` is borrowed only briefly —
        // cloning it here put an atomic refcount round-trip on every issued
        // instruction.
        let instr = {
            let program = self.program.as_ref().expect("launch in progress");
            *program.fetch(pc).unwrap_or(&Instr::Exit)
        };

        match instr {
            Instr::Mov { dst, src } => {
                for lane in lanes(mask) {
                    let v = warp.operand(lane, src);
                    warp.set_reg(lane, dst, v);
                }
                self.complete_alu(warp, mask);
            }
            Instr::Alu { op, dst, a, b } => {
                for lane in lanes(mask) {
                    let va = warp.operand(lane, a);
                    let vb = warp.operand(lane, b);
                    warp.set_reg(lane, dst, op.eval(va, vb));
                }
                self.complete_alu(warp, mask);
            }
            Instr::Special { dst, sreg } => {
                for lane in lanes(mask) {
                    let v = match sreg {
                        SpecialReg::Tid => warp.warp_in_block * self.cfg.warp_size + lane,
                        SpecialReg::Ntid => self.threads_per_block,
                        SpecialReg::Ctaid => warp.ctaid,
                        SpecialReg::Nctaid => self.grid_blocks,
                        SpecialReg::LaneId => lane,
                        SpecialReg::WarpId => warp.warp_in_block,
                    };
                    warp.set_reg(lane, dst, v);
                }
                self.complete_alu(warp, mask);
            }
            Instr::LdParam { dst, index } => {
                let v = self.params[usize::from(index)];
                for lane in lanes(mask) {
                    warp.set_reg(lane, dst, v);
                }
                self.complete_alu(warp, mask);
            }
            Instr::Ld {
                dst,
                addr,
                space: Space::Shared,
                ..
            } => {
                let block = self.sms[s].blocks[warp.block_index]
                    .as_ref()
                    .expect("resident block");
                for lane in lanes(mask) {
                    let a = addr.resolve(warp.reg(lane, addr.base));
                    let idx = (a / 4) as usize;
                    let v = *block.shared.get(idx).ok_or(SimError::AddressOutOfBounds {
                        addr: u64::from(a),
                        pc,
                    })?;
                    warp.set_reg(lane, dst, v);
                }
                warp.advance();
                warp.state = WarpState::Ready {
                    at: self.now + u64::from(self.cfg.shared_latency),
                };
                self.count_issue(mask);
            }
            Instr::St {
                src,
                addr,
                space: Space::Shared,
                ..
            } => {
                for lane in lanes(mask) {
                    let a = addr.resolve(warp.reg(lane, addr.base));
                    let v = warp.operand(lane, src);
                    let block = self.sms[s].blocks[warp.block_index]
                        .as_mut()
                        .expect("resident block");
                    let idx = (a / 4) as usize;
                    *block
                        .shared
                        .get_mut(idx)
                        .ok_or(SimError::AddressOutOfBounds {
                            addr: u64::from(a),
                            pc,
                        })? = v;
                }
                warp.advance();
                warp.state = WarpState::Ready { at: self.now + 1 };
                self.count_issue(mask);
            }
            Instr::Ld {
                dst,
                addr,
                space: Space::Global,
                strong,
            } => {
                return self.exec_global(s, warp, pc, mask, GlobalOp::Load { dst, strong }, addr);
            }
            Instr::St {
                src,
                addr,
                space: Space::Global,
                strong,
            } => {
                return self.exec_global(s, warp, pc, mask, GlobalOp::Store { src, strong }, addr);
            }
            Instr::Atom {
                op,
                dst,
                addr,
                val,
                cmp,
                scope,
            } => {
                return self.exec_global(
                    s,
                    warp,
                    pc,
                    mask,
                    GlobalOp::Atomic {
                        op,
                        dst,
                        val,
                        cmp,
                        scope,
                    },
                    addr,
                );
            }
            Instr::Fence { scope } => {
                warp.advance();
                warp.state = WarpState::WaitFence { end: None, scope };
                self.count_issue(mask);
            }
            Instr::Bar => {
                if !warp.converged() {
                    return Err(SimError::BarrierDivergence { pc });
                }
                warp.advance();
                warp.state = WarpState::WaitBarrier;
                self.count_issue(mask);
                let (arrived, live) = {
                    let block = self.sms[s].blocks[warp.block_index]
                        .as_mut()
                        .expect("resident block");
                    block.barrier_arrived += 1;
                    (block.barrier_arrived, block.live_warps)
                };
                if arrived >= live {
                    // This warp is currently taken out of its slot: release
                    // it directly, then the rest.
                    warp.state = WarpState::Ready { at: self.now + 5 };
                    let block = self.sms[s].blocks[warp.block_index]
                        .as_mut()
                        .expect("resident block");
                    block.barrier_arrived -= 1; // this warp, handled here
                    self.release_barrier(s, warp.block_index);
                }
            }
            Instr::Branch {
                cond,
                if_zero,
                target,
                reconv,
            } => {
                let mut taken = 0u32;
                for lane in lanes(mask) {
                    let v = warp.reg(lane, cond);
                    if (v == 0) == if_zero {
                        taken |= 1 << lane;
                    }
                }
                warp.branch(taken, target, pc + 1, reconv);
                warp.state = WarpState::Ready { at: self.now + 1 };
                self.count_issue(mask);
            }
            Instr::Jump { target } => {
                warp.jump(target);
                warp.state = WarpState::Ready { at: self.now + 1 };
                self.count_issue(mask);
            }
            Instr::Exit => {
                warp.exit_lanes(mask);
                self.count_issue(mask);
                if warp.is_done() {
                    if warp.pending_loads == 0 && warp.outstanding_stores == 0 {
                        warp.state = WarpState::Done;
                    } else {
                        warp.state = WarpState::WaitMem; // drain, then retire
                    }
                    return Ok(Outcome::Exited);
                }
                warp.state = WarpState::Ready { at: self.now + 1 };
            }
            Instr::Nop => {
                warp.advance();
                warp.state = WarpState::Ready { at: self.now + 1 };
                self.count_issue(mask);
            }
        }
        Ok(Outcome::Issued)
    }

    fn complete_alu(&mut self, warp: &mut Warp, mask: u32) {
        warp.advance();
        warp.state = WarpState::Ready { at: self.now + 1 };
        self.count_issue(mask);
    }

    fn count_issue(&mut self, mask: u32) {
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += u64::from(mask.count_ones());
    }

    /// Takes the reusable scratch buffers off `self` for the duration of
    /// one global access, so [`Gpu::exec_global_with`] can fill them while
    /// still borrowing `self` mutably (and early returns restore them).
    fn exec_global(
        &mut self,
        s: usize,
        warp: &mut Warp,
        pc: Pc,
        mask: u32,
        op: GlobalOp,
        addr: scord_isa::MemAddr,
    ) -> Result<Outcome, SimError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.exec_global_with(s, warp, pc, mask, op, addr, &mut scratch);
        self.scratch = scratch;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_global_with(
        &mut self,
        s: usize,
        warp: &mut Warp,
        pc: Pc,
        mask: u32,
        op: GlobalOp,
        addr: scord_isa::MemAddr,
        scratch: &mut Scratch,
    ) -> Result<Outcome, SimError> {
        let (is_store, is_atomic, strong) = match op {
            GlobalOp::Load { strong, .. } => (false, false, strong),
            GlobalOp::Store { strong, .. } => (true, false, strong),
            GlobalOp::Atomic { .. } => (true, true, true),
        };
        let use_l1 = !strong && !is_store && !is_atomic;

        // Fast stall check before any address work: an access that bypasses
        // L1 always generates at least one L2 transaction (the executed
        // mask is never empty), so when the queue is already over the
        // high-water mark it will stall no matter what it touches. Under
        // congestion a warp retries every cycle; without this check each
        // retry re-gathered and re-coalesced all 32 lane addresses. (An
        // out-of-bounds address on such a retrying access is now reported
        // when the queue drains rather than during the stall — identical
        // outcome for every program that does not abort.)
        if !use_l1
            && !self.sms[s].out_queue.is_empty()
            && self.sms[s].out_queue.len() + 1 > self.cfg.noc_queue
        {
            self.stats.stalls.noc_full += 1;
            warp.state = WarpState::Ready { at: self.now + 1 };
            return Ok(Outcome::Stalled);
        }

        // Gather lane addresses and coalesce into lines.
        let lane_addrs = &mut scratch.lane_addrs;
        lane_addrs.clear();
        for lane in lanes(mask) {
            let a = u64::from(addr.resolve(warp.reg(lane, addr.base)));
            if a % 4 != 0 || a + 4 > self.mem.bytes() {
                return Err(SimError::AddressOutOfBounds { addr: a, pc });
            }
            lane_addrs.push((lane, a));
        }
        let line_mask = u64::from(self.cfg.line_bytes - 1);
        let line_lanes = &mut scratch.line_lanes;
        line_lanes.clear();
        for &(lane, a) in lane_addrs.iter() {
            let line = a & !line_mask;
            match line_lanes.iter_mut().find(|(l, _)| *l == line) {
                Some((_, lm)) => *lm |= 1 << lane,
                None => line_lanes.push((line, 1 << lane)),
            }
        }

        // L1 classification (weak loads only).
        let mut hit_lines = 0usize;
        let to_l2 = &mut scratch.to_l2;
        to_l2.clear();
        let l1_hits = &mut scratch.l1_hits;
        l1_hits.clear();
        for &(line, lm) in line_lanes.iter() {
            if use_l1 && self.sms[s].l1.probe(line) {
                hit_lines += 1;
                l1_hits.push(line);
            } else {
                to_l2.push((line, lm));
            }
        }

        // Stall checks (nothing committed yet). The queue capacity is a
        // high-water mark: a fully-scattered access (up to 32 lines) may
        // overflow an *empty* queue, otherwise it could never issue.
        if !self.sms[s].out_queue.is_empty()
            && self.sms[s].out_queue.len() + to_l2.len() > self.cfg.noc_queue
        {
            self.stats.stalls.noc_full += 1;
            warp.state = WarpState::Ready { at: self.now + 1 };
            return Ok(Outcome::Stalled);
        }
        let toggles = self.cfg.toggles();
        if let Some(det) = &self.detector {
            let pure_l1_hit = use_l1 && to_l2.is_empty() && hit_lines > 0;
            if pure_l1_hit && toggles.lhd && !det.can_accept_l1_hit() {
                self.stats.stalls.lhd += 1;
                warp.state = WarpState::Ready { at: self.now + 1 };
                return Ok(Outcome::Stalled);
            }
        }

        // ---- commit: function first ------------------------------------
        self.count_issue(mask);
        // The lane-access list is only materialized when a detector will
        // consume it, and its buffer is recycled through the detector
        // unit's spare pool rather than allocated per instruction.
        let record = self.detector.is_some();
        let mut accesses: Vec<MemAccess> = match &mut self.detector {
            Some(det) => {
                let mut v = det.take_spare();
                v.reserve(lane_addrs.len());
                v
            }
            None => Vec::new(),
        };
        let who = Accessor {
            sm: s as u8,
            block_slot: self.sms[s].blocks[warp.block_index]
                .as_ref()
                .expect("resident block")
                .block_slot_global,
            warp_slot: warp.warp_slot,
        };
        for &(lane, a) in lane_addrs.iter() {
            let kind = match op {
                GlobalOp::Load { dst, .. } => {
                    let v = self.mem.read_word(a);
                    warp.set_reg(lane, dst, v);
                    AccessKind::Load
                }
                GlobalOp::Store { src, .. } => {
                    let v = warp.operand(lane, src);
                    self.mem.write_word(a, v);
                    AccessKind::Store
                }
                GlobalOp::Atomic {
                    op: aop,
                    dst,
                    val,
                    cmp,
                    scope,
                } => {
                    let old = self.mem.read_word(a);
                    let v = warp.operand(lane, val);
                    let c = warp.operand(lane, cmp);
                    self.mem.write_word(a, aop.apply(old, v, c));
                    if let Some(d) = dst {
                        warp.set_reg(lane, d, old);
                    }
                    let kind = match aop {
                        AtomOp::Cas => AtomKind::Cas,
                        AtomOp::Exch => AtomKind::Exch,
                        _ => AtomKind::Other,
                    };
                    AccessKind::Atomic { kind, scope }
                }
            };
            if record {
                accesses.push(MemAccess {
                    kind,
                    addr: a,
                    strong,
                    pc,
                    who,
                });
            }
        }
        if let Some(det) = &mut self.detector {
            det.enqueue(DetectorEvent::Access { accesses });
        }

        // ---- timing ------------------------------------------------------
        let needs_old_value = matches!(
            op,
            GlobalOp::Load { .. } | GlobalOp::Atomic { dst: Some(_), .. }
        );
        for &line in l1_hits.iter() {
            let _ = self.sms[s].l1.access(line, false, false);
            self.stats.l1_hits += 1;
            warp.pending_loads += 1;
            self.push_event(
                self.now + u64::from(self.cfg.l1_latency),
                Ev::WarpResponse {
                    sm: s,
                    warp: warp.warp_slot as usize,
                    is_store_ack: false,
                    l1_fill: None,
                },
            );
        }
        let hdr = if toggles.noc {
            self.cfg.detection_header_bytes
        } else {
            0
        };
        for &(line, lm) in to_l2.iter() {
            if use_l1 {
                self.stats.l1_misses += 1;
            }
            if is_store && !is_atomic {
                self.sms[s].l1.invalidate(line); // global write-evict
            }
            let lanes_here = lm.count_ones();
            let bytes = 16
                + hdr
                + if is_atomic {
                    8 * lanes_here
                } else if is_store {
                    self.cfg.line_bytes
                } else {
                    0
                };
            let flits = bytes.div_ceil(self.cfg.flit_bytes);
            if needs_old_value {
                warp.pending_loads += 1;
            } else {
                warp.outstanding_stores += 1;
            }
            self.sms[s].out_queue.push_back(Packet {
                line_addr: line,
                write: is_store,
                atomic_lanes: if is_atomic { lanes_here } else { 0 },
                metadata: false,
                needs_response: true,
                is_store_ack: !needs_old_value,
                sm: s as u8,
                warp: warp.warp_slot,
                flits,
                ready_at: 0,
                l1_fill: use_l1,
            });
        }

        warp.advance();
        warp.state = if warp.pending_loads > 0 {
            WarpState::WaitMem
        } else {
            WarpState::Ready { at: self.now + 1 }
        };
        Ok(Outcome::Issued)
    }

    // ---- interconnect -----------------------------------------------------

    fn partition_of(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.cfg.line_bytes)) % u64::from(self.cfg.channels)) as usize
    }

    fn noc_tick(&mut self) {
        let n = self.sms.len();
        for i in 0..n {
            let s = (self.noc_rr + i) % n;
            if self.sms[s].tx_free_at > self.now || self.sms[s].out_queue.is_empty() {
                continue;
            }
            let part = {
                let pkt = self.sms[s].out_queue.front().expect("non-empty");
                self.partition_of(pkt.line_addr)
            };
            if self.parts[part].rx_free_at > self.now {
                continue; // head-of-line blocking at a congested partition
            }
            let mut pkt = self.sms[s].out_queue.pop_front().expect("non-empty");
            let flits = u64::from(pkt.flits);
            self.sms[s].tx_free_at = self.now + flits;
            self.parts[part].rx_free_at = self.now + flits;
            pkt.ready_at = self.now + 8 + flits;
            self.parts[part].in_queue.push_back(pkt);
            self.stats.noc_flits += flits;
        }
        self.noc_rr = self.noc_rr.wrapping_add(1);
    }

    fn part_tick(&mut self, p: usize) {
        // L2 service: one packet per cycle (plus atomic serialization).
        if self.parts[p].l2_free_at <= self.now {
            let ready = matches!(
                self.parts[p].in_queue.front(),
                Some(pkt) if pkt.ready_at <= self.now
            );
            if ready {
                let pkt = self.parts[p].in_queue.pop_front().expect("non-empty");
                let write = pkt.write || pkt.atomic_lanes > 0;
                let outcome = self.parts[p].l2.access(pkt.line_addr, write, pkt.metadata);
                let busy = 1 + u64::from(pkt.atomic_lanes / 2);
                self.parts[p].l2_free_at = self.now + busy;
                match outcome {
                    CacheOutcome::Hit => {
                        if pkt.metadata {
                            self.stats.l2_md_hits += 1;
                        } else {
                            self.stats.l2_data_hits += 1;
                        }
                        self.respond(&pkt, self.now + u64::from(self.cfg.l2_latency));
                    }
                    CacheOutcome::Miss { writeback } => {
                        if pkt.metadata {
                            self.stats.l2_md_misses += 1;
                            self.stats.dram.metadata_reads += 1;
                        } else {
                            self.stats.l2_data_misses += 1;
                            self.stats.dram.data_reads += 1;
                        }
                        if let Some(v) = writeback {
                            if v.metadata {
                                self.stats.dram.metadata_writebacks += 1;
                            } else {
                                self.stats.dram.data_writebacks += 1;
                            }
                            self.parts[p].dram.push(DramRequest {
                                line_addr: v.line_addr,
                                write: true,
                                metadata: v.metadata,
                            });
                        }
                        self.parts[p].dram.push(DramRequest {
                            line_addr: pkt.line_addr,
                            write: false,
                            metadata: pkt.metadata,
                        });
                        let Partition {
                            pending_fills,
                            fill_pool,
                            ..
                        } = &mut self.parts[p];
                        pending_fills
                            .get_or_insert_with(pkt.line_addr, || {
                                // Recycled lists keep their capacity; fresh
                                // ones reserve for the common few-waiter
                                // case up front.
                                fill_pool.pop().unwrap_or_else(|| Vec::with_capacity(8))
                            })
                            .push(pkt);
                    }
                }
            }
        }
        // DRAM service.
        if let Some((req, done)) = self.parts[p].dram.tick(self.now) {
            if !req.write {
                self.push_event(done, Ev::DramDone { part: p, req });
            }
        }
    }

    fn detector_tick(&mut self) -> Result<(), SimError> {
        let toggles = self.cfg.toggles();
        let mut md_lines = Vec::new();
        let Some(det) = &mut self.detector else {
            return Ok(());
        };
        det.tick(self.cfg.detector_throughput, &mut md_lines, &mut self.stats)?;
        if toggles.md {
            for line in md_lines {
                let p = self.partition_of(line);
                self.parts[p].in_queue.push_back(Packet {
                    line_addr: line,
                    write: true, // metadata entries are read-modify-written
                    atomic_lanes: 0,
                    metadata: true,
                    needs_response: false,
                    is_store_ack: false,
                    sm: 0,
                    warp: 0,
                    flits: 1,
                    ready_at: self.now + 4,
                    l1_fill: false,
                });
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
enum GlobalOp {
    Load {
        dst: scord_isa::Reg,
        strong: bool,
    },
    Store {
        src: scord_isa::Operand,
        strong: bool,
    },
    Atomic {
        op: AtomOp,
        dst: Option<scord_isa::Reg>,
        val: scord_isa::Operand,
        cmp: scord_isa::Operand,
        scope: Scope,
    },
}

/// Iterates the set lane indices of a mask.
fn lanes(mask: u32) -> impl Iterator<Item = u32> {
    (0..32).filter(move |i| mask & (1 << i) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_isa::KernelBuilder;

    #[test]
    fn heap_is_a_min_heap_by_time_then_seq() {
        let mut h = BinaryHeap::new();
        h.push(HeapItem {
            time: 5,
            seq: 1,
            ev: Ev::DramDone {
                part: 0,
                req: DramRequest {
                    line_addr: 0,
                    write: false,
                    metadata: false,
                },
            },
        });
        h.push(HeapItem {
            time: 3,
            seq: 2,
            ev: Ev::DramDone {
                part: 1,
                req: DramRequest {
                    line_addr: 0,
                    write: false,
                    metadata: false,
                },
            },
        });
        let first = h.pop().unwrap();
        assert_eq!(first.time, 3);
    }

    #[test]
    fn launch_validates_parameters() {
        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let mut k = KernelBuilder::new("t", 1);
        let p = k.ld_param(0);
        k.st_global(p, 0, 1u32);
        let prog = k.finish().unwrap();
        assert!(matches!(
            gpu.launch(&prog, 0, 32, &[0]),
            Err(SimError::Launch(_))
        ));
        assert!(matches!(
            gpu.launch(&prog, 1, 2048, &[0]),
            Err(SimError::Launch(_))
        ));
        assert!(matches!(
            gpu.launch(&prog, 1, 32, &[]),
            Err(SimError::Launch(_))
        ));
    }

    /// `Gpu` must stay `Send` so independent simulations can be sharded
    /// across host threads (the harness's parallel executor relies on it).
    #[test]
    fn gpu_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Gpu>();
        assert_send::<SimError>();
    }

    #[test]
    fn geometry_overflowing_block_id_field_is_a_config_error() {
        // 32 SMs × 8 blocks = 256 slots > the 7-bit BlockID field (128).
        let cfg = GpuConfig {
            num_sms: 32,
            ..GpuConfig::paper_default()
        };
        assert!(matches!(Gpu::try_new(cfg), Err(SimError::Config(_))));
        // 33 warp slots > the 5-bit WarpID field (32).
        let cfg = GpuConfig {
            warps_per_sm: 33,
            ..GpuConfig::paper_default()
        };
        assert!(matches!(Gpu::try_new(cfg), Err(SimError::Config(msg)) if msg.contains("WarpID")));
        // The paper's default is exactly at the limits and must pass.
        assert!(GpuConfig::paper_default().validate().is_ok());
        assert!(GpuConfig {
            num_sms: 16,
            ..GpuConfig::paper_default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "BlockID")]
    fn gpu_new_panics_on_aliasing_geometry() {
        let _ = Gpu::new(GpuConfig {
            num_sms: 200,
            ..GpuConfig::paper_default()
        });
    }

    /// The quiescence skip must reproduce every statistic of un-skipped
    /// execution bit-for-bit; `cycles_skipped` is the one diagnostic field
    /// allowed to differ. Exercised per-`Gpu` via `GpuConfig::cycle_skip`
    /// (not the process-wide override, which other tests may share). The
    /// kernel mixes the wait states the skip reasons about: cold global
    /// loads (memory), a barrier, a device fence and a final store drain.
    #[test]
    fn cycle_skip_reproduces_stats_exactly() {
        let run = |cycle_skip: bool| {
            let cfg = GpuConfig {
                cycle_skip,
                ..GpuConfig::paper_default()
            };
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.mem_mut().alloc_words(4096);
            let mut k = KernelBuilder::new("skip_mix", 1);
            let base = k.ld_param(0);
            let gtid = k.global_tid();
            let addr = k.index_addr(base, gtid, 4);
            let v = k.ld_global(addr, 0);
            k.bar();
            k.fence(Scope::Device);
            let v2 = k.alu(scord_isa::AluOp::Add, v, 1u32);
            k.st_global(addr, 0, v2);
            k.exit();
            let prog = k.finish().unwrap();
            gpu.launch(&prog, 8, 64, &[buf.addr()])
                .expect("kernel completes")
        };
        let mut skipping = run(true);
        let ticking = run(false);
        assert_eq!(ticking.cycles_skipped, 0, "disabled skip must never jump");
        assert!(
            skipping.cycles_skipped > 0,
            "the stall-heavy kernel must exercise the skip"
        );
        skipping.cycles_skipped = 0;
        assert_eq!(
            skipping, ticking,
            "skipped execution must reproduce every counter exactly"
        );
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let mut k = KernelBuilder::new("oob", 0);
        let bad = k.mov(0xFFFF_FFF0u32);
        let _ = k.ld_global(bad, 0);
        let prog = k.finish().unwrap();
        assert!(matches!(
            gpu.launch(&prog, 1, 32, &[]),
            Err(SimError::AddressOutOfBounds { .. })
        ));
    }
}
