//! The whole-GPU cycle-level model: kernel launch and block dispatch, warp
//! scheduling and SIMT execution, the coalescer, L1/L2 caches, the crossbar
//! NoC, GDDR5 channels, and the race-detector attachment.

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use scord_core::{AccessKind, AtomKind, MemAccess, RaceLog, ScordDetector, Trace};
use scord_isa::{AtomOp, Pc, Program};
use scord_pool::WorkerPool;

use crate::front::{self, FrontCtx, GlobalOp, PendingAccess, PendingEvent};
use crate::memside::{MemCtx, Partition};
use crate::sample::{SampleModel, SampleReport};
use crate::{
    Cache, DetectorEvent, DetectorUnit, DeviceMemory, DramRequest, GpuConfig, SimStats, Sm,
    SmBlock, Warp, WarpState,
};

/// A request packet travelling from an SM (or the race detector) to a memory
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// 128-byte-aligned line address.
    pub line_addr: u64,
    /// `true` for stores/atomics (dirties the L2 line).
    pub write: bool,
    /// Number of lanes serialized on an atomic (0 for plain accesses).
    pub atomic_lanes: u32,
    /// `true` for detector-metadata traffic.
    pub metadata: bool,
    /// Whether a response must be delivered.
    pub needs_response: bool,
    /// `true` when the response is a store acknowledgement (drains the
    /// warp's store counter rather than its load counter).
    pub is_store_ack: bool,
    /// Origin SM.
    pub sm: u8,
    /// Origin warp slot.
    pub warp: u8,
    /// Request size in flits.
    pub flits: u32,
    /// Cycle at which the packet is available at the partition.
    pub ready_at: u64,
    /// Fill the origin SM's L1 with this line when the response arrives.
    pub l1_fill: bool,
    /// Sampled-SM mode only: `true` for statistically generated ghost
    /// traffic standing in for un-simulated SMs (see
    /// [`GpuConfig::sample_sms`]). Ghosts occupy links, queues and
    /// service slots like real packets but are excluded from the
    /// real-busy accounting the extrapolation reads.
    pub ghost: bool,
}

#[derive(Debug)]
enum Ev {
    /// A memory response reaching a warp.
    WarpResponse {
        sm: usize,
        warp: usize,
        is_store_ack: bool,
        l1_fill: Option<u64>,
    },
    /// A DRAM read completing at a partition.
    DramDone { part: usize, req: DramRequest },
}

#[derive(Debug)]
struct HeapItem {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Line-address → L2 partition / DRAM channel mapping: addresses are
/// striped across partitions by 128-byte line. The single source of truth —
/// the NoC router, the detector's metadata writeback path, and the
/// quiescence scan's head-of-line probe must all agree, or a packet could
/// be routed to one shard while the skip logic watches another and sleeps
/// through its arrival.
pub(crate) fn partition_of(cfg: &GpuConfig, line_addr: u64) -> usize {
    ((line_addr / u64::from(cfg.line_bytes)) % u64::from(cfg.channels)) as usize
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog expired — usually a deadlocked spin loop or barrier.
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
    },
    /// `bar.sync` executed by a divergent warp.
    BarrierDivergence {
        /// Offending instruction.
        pc: Pc,
    },
    /// A lane accessed memory outside the device allocation.
    AddressOutOfBounds {
        /// The faulting byte address.
        addr: u64,
        /// Offending instruction.
        pc: Pc,
    },
    /// A raw memory access (no instruction context) fell outside the device
    /// allocation — e.g. a host-side [`DeviceMemory::try_read_word`]. The
    /// 64-bit address is preserved instead of being truncated to 32 bits.
    AddressOutOfRange {
        /// The faulting byte address.
        addr: u64,
    },
    /// Bad launch parameters.
    Launch(String),
    /// A [`GpuConfig`] violating a hard machine limit (metadata field
    /// widths, packet id widths) — see [`GpuConfig::validate`].
    Config(String),
    /// The race detector rejected an event (malformed accessor, address,
    /// or geometry — see [`scord_core::DetectorError`]).
    Detector(scord_core::DetectorError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
            SimError::BarrierDivergence { pc } => {
                write!(f, "barrier executed by divergent warp at pc {pc}")
            }
            SimError::AddressOutOfBounds { addr, pc } => {
                write!(f, "global access at pc {pc} out of bounds: 0x{addr:x}")
            }
            SimError::AddressOutOfRange { addr } => {
                write!(f, "memory address out of range: 0x{addr:x}")
            }
            SimError::Launch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Detector(err) => write!(f, "detector rejected event: {err}"),
        }
    }
}

impl Error for SimError {}

impl From<scord_core::DetectorError> for SimError {
    fn from(err: scord_core::DetectorError) -> Self {
        SimError::Detector(err)
    }
}

/// The simulated GPU.
///
/// ```
/// use scord_isa::KernelBuilder;
/// use scord_sim::{Gpu, GpuConfig};
///
/// // out[gtid] = gtid
/// let mut k = KernelBuilder::new("iota", 1);
/// let out = k.ld_param(0);
/// let gtid = k.global_tid();
/// let addr = k.index_addr(out, gtid, 4);
/// k.st_global(addr, 0, gtid);
/// k.exit();
/// let program = k.finish().unwrap();
///
/// let mut gpu = Gpu::new(GpuConfig::paper_default());
/// let buf = gpu.mem_mut().alloc_words(128);
/// let stats = gpu.launch(&program, 2, 64, &[buf.addr()]).unwrap();
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.mem().read_word(buf.word_addr(100)), 100);
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    mem: DeviceMemory,
    sms: Vec<Sm>,
    parts: Vec<Partition>,
    detector: Option<DetectorUnit>,
    stats: SimStats,
    heap: BinaryHeap<HeapItem>,
    seq: u64,
    now: u64,
    max_cycles: u64,
    // Per-launch state. `Arc` (not `Rc`) keeps the whole `Gpu` `Send`, so
    // independent simulations can be sharded across host threads.
    program: Option<Arc<Program>>,
    params: Vec<u32>,
    grid_blocks: u32,
    threads_per_block: u32,
    warps_per_block: u32,
    next_block: u32,
    blocks_live: u32,
    noc_rr: usize,
    /// Worker pool shared by the parallel SM front-end phase and the
    /// sharded memory-side stage. `None` when both effective thread counts
    /// are 1: everything then runs inline, through the identical per-SM /
    /// per-shard code paths (see [`crate::front`] and [`crate::memside`]).
    pool: Option<WorkerPool>,
    /// Effective `sm_threads` (1 = inline serial front ends).
    sm_eff: u32,
    /// Effective `mem_threads` (1 = inline serial memory-side drain).
    mem_eff: u32,
    /// Reused buffer for the parallel [`Gpu::next_wake`] reduction (one
    /// slot per SM followed by one per partition).
    wake_scratch: Vec<u64>,
    /// Per-cycle Phase A / Phase B wall-time accounting. Off by default —
    /// two clock reads per cycle are measurable on the hot path — and purely
    /// diagnostic: simulation results are unaffected.
    phase_timing: bool,
    phase_a_nanos: u64,
    phase_b_nanos: u64,
    /// Per-shard memory-side wall time (one slot per partition), a subset
    /// of `phase_b_nanos`. Zeros unless phase timing is on.
    shard_b_nanos: Vec<u64>,
    /// `true` while next cycle's block dispatch might place a block: set at
    /// launch and whenever a block retires (freeing resources), kept set
    /// while a dispatch pass places anything (the pass is capped at one
    /// block per SM per cycle). When clear, dispatch cannot progress until
    /// a block finishes — which lets the quiescence skip ignore it.
    dispatch_hint: bool,
    /// Sampled-SM traffic model, present only when
    /// [`GpuConfig::sample_sms`] > 0 (see [`crate::sample`] module docs):
    /// only `sample_sms` detailed SMs are built and this injects the
    /// un-simulated SMs' ghost traffic in the serial NoC step.
    sample: Option<SampleModel>,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("cfg", &self.cfg)
            .field("now", &self.now)
            .field("blocks_live", &self.blocks_live)
            .finish()
    }
}

impl Gpu {
    /// Builds a GPU (and its race detector, when
    /// [`crate::DetectionMode`] says so) from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates a hard machine limit (see
    /// [`GpuConfig::validate`]); use [`Gpu::try_new`] for a recoverable
    /// [`SimError::Config`].
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a GPU, returning [`SimError::Config`] instead of panicking on
    /// a geometry the metadata field widths cannot represent.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] from [`GpuConfig::validate`].
    pub fn try_new(cfg: GpuConfig) -> Result<Self, SimError> {
        Self::try_with_detector_factory(cfg, |dc| Box::new(ScordDetector::new(dc)))
    }

    /// Builds a GPU with a custom detector (used to attach the Table VIII
    /// baseline models to the full timing simulation).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates a hard machine limit (see
    /// [`GpuConfig::validate`]); use [`Gpu::try_with_detector_factory`] for
    /// a recoverable [`SimError::Config`].
    pub fn with_detector_factory(
        cfg: GpuConfig,
        factory: impl FnOnce(scord_core::DetectorConfig) -> Box<dyn scord_core::Detector>,
    ) -> Self {
        Self::try_with_detector_factory(cfg, factory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a GPU with a custom detector, returning [`SimError::Config`]
    /// instead of panicking on an unrepresentable geometry.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] from [`GpuConfig::validate`].
    pub fn try_with_detector_factory(
        cfg: GpuConfig,
        factory: impl FnOnce(scord_core::DetectorConfig) -> Box<dyn scord_core::Detector>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let detector = cfg
            .detector_config()
            .map(|dc| DetectorUnit::with_faults(factory(dc), cfg.detector_queue, cfg.fault));
        // Sampled mode builds only the detailed SMs; the config keeps
        // `num_sms` for geometry (BlockID packing, detector identity
        // spaces) and the memory system stays full-size — the missing
        // SMs exist only as ghost traffic (see `crate::sample`).
        let detailed_sms = if cfg.sample_sms > 0 {
            cfg.sample_sms
        } else {
            cfg.num_sms
        };
        let sample = (cfg.sample_sms > 0).then(|| SampleModel::new(cfg.num_sms, cfg.sample_sms));
        let sms = (0..detailed_sms)
            .map(|i| {
                Sm::new(
                    i as u8,
                    cfg.warps_per_sm,
                    cfg.blocks_per_sm,
                    Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
                    cfg.regs_per_sm,
                    cfg.shared_mem_per_sm,
                )
            })
            .collect();
        let parts: Vec<Partition> = (0..cfg.channels).map(|_| Partition::new(&cfg)).collect();
        // Effective parallelism: each config knob, raised by its
        // process-wide override, capped at one thread per SM (front ends)
        // or per partition (memory shards). Sampled here so flipping an
        // override mid-run cannot affect a live `Gpu`. One pool serves both
        // phases — they never overlap within a cycle — sized for the wider
        // fan-out.
        let sm_eff = cfg
            .sm_threads
            .max(crate::sm_threads_override())
            .min(detailed_sms)
            .max(1);
        let mem_eff = cfg
            .mem_threads
            .max(crate::mem_threads_override())
            .min(cfg.channels)
            .max(1);
        let threads = sm_eff.max(mem_eff);
        let pool = (threads > 1).then(|| WorkerPool::new(threads as usize));
        let shard_b_nanos = vec![0; parts.len()];
        Ok(Gpu {
            mem: DeviceMemory::new(cfg.mem_bytes),
            sms,
            parts,
            detector,
            stats: SimStats::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            max_cycles: 200_000_000,
            cfg,
            program: None,
            params: Vec::new(),
            grid_blocks: 0,
            threads_per_block: 0,
            warps_per_block: 0,
            next_block: 0,
            blocks_live: 0,
            noc_rr: 0,
            pool,
            sm_eff,
            mem_eff,
            wake_scratch: Vec::new(),
            phase_timing: false,
            phase_a_nanos: 0,
            phase_b_nanos: 0,
            shard_b_nanos,
            dispatch_hint: true,
            sample,
        })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Functional device memory.
    #[must_use]
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Mutable device memory (allocation, host copies).
    pub fn mem_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    /// Sets the deadlock watchdog (cycles).
    pub fn set_max_cycles(&mut self, cycles: u64) {
        self.max_cycles = cycles;
    }

    /// Effective SM front-end thread count (1 = inline serial front ends).
    #[must_use]
    pub fn sm_threads(&self) -> u32 {
        self.sm_eff
    }

    /// Effective memory-side shard thread count (1 = inline serial drain in
    /// ascending partition order).
    #[must_use]
    pub fn mem_threads(&self) -> u32 {
        self.mem_eff
    }

    /// Enables per-cycle Phase A / Phase B wall-time accounting (see
    /// [`Gpu::phase_nanos`]). Off by default; the perf harness turns it on.
    pub fn set_phase_timing(&mut self, on: bool) {
        self.phase_timing = on;
    }

    /// Accumulated `(phase A, phase B)` wall time in nanoseconds since the
    /// last launch started — the parallel front-end phase vs the
    /// commit/NoC/L2/DRAM/detector phase. Zeros unless
    /// [`Gpu::set_phase_timing`] is on.
    #[must_use]
    pub fn phase_nanos(&self) -> (u64, u64) {
        (self.phase_a_nanos, self.phase_b_nanos)
    }

    /// Per-shard memory-side wall time in nanoseconds since the last launch
    /// started, one slot per L2 partition / DRAM channel. Covers only the
    /// sharded L2+DRAM tick — a subset of [`Gpu::phase_nanos`]'s Phase B
    /// total, which also spans SM commit, NoC routing, the merge and the
    /// detector drain. Zeros unless [`Gpu::set_phase_timing`] is on.
    #[must_use]
    pub fn shard_phase_b_nanos(&self) -> &[u64] {
        &self.shard_b_nanos
    }

    /// The detector's accumulated race log (empty log if detection is off).
    #[must_use]
    pub fn races(&self) -> Option<&RaceLog> {
        self.detector.as_ref().map(|d| d.detector().races())
    }

    /// Host-heap usage of the detector's metadata store as
    /// `(resident_bytes, resident_entries)` — the simulation-side memory
    /// footprint, distinct from the modelled hardware metadata region.
    /// `None` when detection is off or the detector keeps no store.
    #[must_use]
    pub fn detector_store_usage(&self) -> Option<(u64, u64)> {
        self.detector
            .as_ref()
            .and_then(|d| d.detector().store_usage())
    }

    /// The sampled-SM extrapolation report for the last completed launch,
    /// or `None` when [`GpuConfig::sample_sms`] is 0 (full-detail run).
    /// See [`SampleReport`] for the obligation to display the error bound
    /// next to every extrapolated number.
    #[must_use]
    pub fn sample_report(&self) -> Option<SampleReport> {
        // The memory-bound floor: the busiest shard's real (non-ghost)
        // service demand. The full grid executed, so this is the full
        // machine's demand already — it does not scale with SM count.
        let memory_term = self
            .parts
            .iter()
            .map(|p| p.real_l2_busy.max(p.real_dram_busy))
            .max()
            .unwrap_or(0);
        self.sample
            .as_ref()
            .map(|s| s.report(&self.cfg, self.stats.cycles, self.grid_blocks, memory_term))
    }

    /// The event trace captured by the attached detector, when it records
    /// one (see [`scord_core::RecordingDetector`]). `None` when detection
    /// is off or the detector does not record.
    #[must_use]
    pub fn recorded_trace(&self) -> Option<&Trace> {
        self.detector.as_ref().and_then(|d| d.detector().trace())
    }

    /// Launches `program` on `grid_blocks × threads_per_block` threads and
    /// simulates to completion, returning this launch's statistics.
    ///
    /// Successive launches on one `Gpu` behave like sequential kernels of
    /// one application: caches persist, the detector's race log accumulates,
    /// but detector *state* (metadata, fence file, lock tables) is reset at
    /// the boundary — a kernel launch is a device-wide synchronization
    /// point.
    ///
    /// # Errors
    ///
    /// [`SimError::Launch`] for bad parameters; [`SimError::Timeout`],
    /// [`SimError::BarrierDivergence`] or [`SimError::AddressOutOfBounds`]
    /// for runtime failures.
    pub fn launch(
        &mut self,
        program: &Program,
        grid_blocks: u32,
        threads_per_block: u32,
        params: &[u32],
    ) -> Result<SimStats, SimError> {
        if threads_per_block == 0 || threads_per_block > self.cfg.max_threads_per_block {
            return Err(SimError::Launch(format!(
                "threads per block must be 1..={}, got {threads_per_block}",
                self.cfg.max_threads_per_block
            )));
        }
        if grid_blocks == 0 {
            return Err(SimError::Launch("grid must have at least 1 block".into()));
        }
        if params.len() != usize::from(program.num_params()) {
            return Err(SimError::Launch(format!(
                "kernel {} expects {} params, got {}",
                program.name(),
                program.num_params(),
                params.len()
            )));
        }
        let warps_per_block = threads_per_block.div_ceil(self.cfg.warp_size);
        if warps_per_block > self.cfg.warps_per_sm {
            return Err(SimError::Launch("block exceeds SM warp slots".into()));
        }
        let regs_needed = u32::from(program.num_regs()) * threads_per_block;
        if regs_needed > self.cfg.regs_per_sm {
            return Err(SimError::Launch("block exceeds SM register file".into()));
        }

        // Reset per-launch machine state (caches persist, like real HW).
        self.program = Some(Arc::new(program.clone()));
        self.params = params.to_vec();
        self.grid_blocks = grid_blocks;
        self.threads_per_block = threads_per_block;
        self.warps_per_block = warps_per_block;
        self.next_block = 0;
        self.blocks_live = 0;
        self.now = 0;
        self.seq = 0;
        self.dispatch_hint = true;
        self.heap.clear();
        self.stats = SimStats::default();
        self.phase_a_nanos = 0;
        self.phase_b_nanos = 0;
        self.shard_b_nanos.fill(0);
        for sm in &mut self.sms {
            sm.rr = 0;
            sm.tx_free_at = 0;
            sm.out_queue.clear();
            sm.recompute_occupied();
            sm.front.begin_cycle();
        }
        for p in &mut self.parts {
            p.rx_free_at = 0;
            p.l2_free_at = 0;
            p.in_queue.clear();
            p.pending_fills.clear();
            p.dram.reset();
            p.real_l2_busy = 0;
            p.real_dram_busy = 0;
            p.buf = Default::default();
        }
        if let Some(det) = &mut self.detector {
            det.detector_mut().on_kernel_boundary();
        }
        if let Some(samp) = &mut self.sample {
            samp.reset();
        }

        // Sampled once per launch so flipping the process-wide override
        // mid-simulation cannot affect an in-flight run. Results are
        // byte-identical either way (the skip only jumps over cycles in
        // which no component can make progress, replicating their per-cycle
        // bookkeeping); skipping is the default because stall-heavy phases
        // dominate wall-clock otherwise.
        let skip = self.cfg.cycle_skip && crate::cycle_skip_enabled();
        while !self.finished() {
            let busy = self.tick()?;
            if self.now > self.max_cycles {
                return Err(SimError::Timeout { cycles: self.now });
            }
            // The skip scan ([`Gpu::next_wake`]) costs a pass over every
            // resident warp and queue, so only attempt it after a tick that
            // made no observable progress. Deferring a possible jump by one
            // busy tick is byte-identical: that tick replicates exactly the
            // per-cycle bookkeeping the jump would have accounted for.
            if skip && !busy && !self.finished() {
                self.skip_idle_cycles();
            }
        }

        self.stats.cycles = self.now;
        if let Some(det) = &self.detector {
            self.stats.unique_races = det.detector().races().unique_count();
            self.stats.total_races = det.detector().races().total_count();
            self.stats.faults_injected = det.fault_stats().map_or(0, |s| s.total());
        }
        Ok(self.stats)
    }

    fn finished(&self) -> bool {
        self.next_block >= self.grid_blocks
            && self.blocks_live == 0
            && self.heap.is_empty()
            && self.sms.iter().all(|s| s.out_queue.is_empty())
            && self.parts.iter().all(|p| {
                p.in_queue.is_empty() && p.pending_fills.is_empty() && p.dram.idle(self.now)
            })
            && self.detector.as_ref().is_none_or(DetectorUnit::is_idle)
    }

    /// Earliest future cycle at which any component can make progress, or
    /// `u64::MAX` when nothing ever will (deadlock — the watchdog handles
    /// it). Undershooting is always safe (the skipped-to cycle simply makes
    /// no progress); overshooting would change results, so every bound here
    /// is conservative:
    ///
    /// * the event heap's minimum (memory responses, DRAM completions);
    /// * block dispatch, whenever it might still place a block;
    /// * each resident warp's wake time — `Ready { at }`, a timed fence, or
    ///   "next cycle" for a fence whose drain already completed (the
    ///   prepass arms it one cycle later);
    /// * each SM with queued NoC traffic: its injection link and the head
    ///   packet's target-partition link;
    /// * each partition with queued L2 traffic: the L2 port and the head
    ///   packet's arrival time;
    /// * each non-idle DRAM channel: its busy-until horizon;
    /// * the detector whenever its queue is non-empty (it consumes events
    ///   every cycle).
    ///
    /// `&mut self` only for [`Gpu::wake_scratch`]; the scan itself reads.
    fn next_wake(&mut self) -> u64 {
        let floor = self.now + 1;
        if self.next_block < self.grid_blocks && self.dispatch_hint {
            return floor;
        }
        if self.detector.as_ref().is_some_and(|d| !d.is_idle()) {
            return floor;
        }
        // A ghost backlog injects into some partition every cycle a link
        // is free; jumping over those cycles would delay the injections
        // and change sampled timing, so hold the skip while it drains.
        if self.sample.as_ref().is_some_and(SampleModel::has_backlog) {
            return floor;
        }
        let mut t = u64::MAX;
        if let Some(item) = self.heap.peek() {
            t = t.min(item.time.max(floor));
        }
        let now = self.now;
        if let Some(pool) = &self.pool {
            // Parallel scan, one slot per SM followed by one per memory
            // shard: a pure min-reduction, so the fold order (and hence
            // host thread scheduling) cannot affect the result.
            let nsms = self.sms.len();
            let mut wakes = std::mem::take(&mut self.wake_scratch);
            wakes.clear();
            wakes.resize(nsms + self.parts.len(), u64::MAX);
            let (cfg, sms, parts) = (&self.cfg, &self.sms, &self.parts);
            pool.for_each_mut(&mut wakes, |i, slot| {
                *slot = if i < nsms {
                    Self::sm_wake(cfg, sms, parts, floor, i)
                } else {
                    parts[i - nsms].wake(now, floor)
                };
            });
            for &w in &wakes {
                t = t.min(w);
            }
            self.wake_scratch = wakes;
            if t == floor {
                return floor;
            }
        } else {
            for s in 0..self.sms.len() {
                let w = Self::sm_wake(&self.cfg, &self.sms, &self.parts, floor, s);
                if w == floor {
                    return floor;
                }
                t = t.min(w);
            }
            for p in &self.parts {
                t = t.min(p.wake(now, floor));
            }
        }
        t
    }

    /// One SM's earliest wake time for [`Gpu::next_wake`]: its resident
    /// warps' wake cycles plus its queued NoC head-of-line packet. An
    /// associated function over plain borrows so the parallel scan can share
    /// it across worker threads without requiring `Gpu: Sync`.
    fn sm_wake(cfg: &GpuConfig, sms: &[Sm], parts: &[Partition], floor: u64, s: usize) -> u64 {
        let sm = &sms[s];
        let mut t = u64::MAX;
        let mut occ = sm.occupied;
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let Some(w) = sm.warps[idx].as_ref() else {
                continue;
            };
            match w.state {
                WarpState::Ready { at } => t = t.min(at.max(floor)),
                WarpState::WaitFence { end: Some(end), .. } => t = t.min(end.max(floor)),
                WarpState::WaitFence { end: None, .. }
                    if w.outstanding_stores == 0 && w.pending_loads == 0 =>
                {
                    return floor;
                }
                // WaitMem / WaitBarrier / draining fences wake via the
                // event heap or another warp's progress.
                _ => {}
            }
        }
        if let Some(head) = sm.out_queue.front() {
            let part = partition_of(cfg, head.line_addr);
            let ready = sm.tx_free_at.max(parts[part].rx_free_at);
            t = t.min(ready.max(floor));
        }
        t
    }

    /// Jumps `now` to the cycle before [`Gpu::next_wake`], replicating the
    /// per-cycle bookkeeping the skipped ticks would have performed: one
    /// memory-stall count per `WaitMem` warp per cycle, one barrier-stall
    /// count per `WaitBarrier` warp per cycle, and the NoC round-robin
    /// pointer advancing every cycle. Nothing else mutates during a
    /// no-progress cycle, so results are byte-identical to ticking through.
    /// The jump is clamped to the watchdog horizon so a deadlock times out
    /// at exactly the same cycle count as un-skipped execution.
    fn skip_idle_cycles(&mut self) {
        let target = self.next_wake();
        let jump_to = target.saturating_sub(1).min(self.max_cycles);
        if jump_to <= self.now {
            return;
        }
        let skipped = jump_to - self.now;
        let mut mem_stalled = 0u64;
        let mut barrier_stalled = 0u64;
        for sm in &self.sms {
            let mut occ = sm.occupied;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                match sm.warps[idx].as_ref().map(|w| &w.state) {
                    Some(WarpState::WaitMem) => mem_stalled += 1,
                    Some(WarpState::WaitBarrier) => barrier_stalled += 1,
                    _ => {}
                }
            }
        }
        self.stats.stalls.memory += skipped * mem_stalled;
        self.stats.stalls.barrier += skipped * barrier_stalled;
        self.noc_rr = self.noc_rr.wrapping_add(skipped as usize);
        self.stats.cycles_skipped += skipped;
        self.now = jump_to;
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(HeapItem {
            time,
            seq: self.seq,
            ev,
        });
    }

    /// Advances the machine one cycle. Returns `true` when the cycle made
    /// observable progress (an event fired, a block dispatched, an
    /// instruction issued or stalled actively, a packet moved, the L2
    /// serviced, or the detector is draining) — the signal the launch loop
    /// uses to decide whether attempting a quiescence skip is worthwhile.
    /// The flag is purely a performance hint: skipping is safe after any
    /// tick, and not skipping merely ticks through the idle span with
    /// identical bookkeeping.
    fn tick(&mut self) -> Result<bool, SimError> {
        self.now += 1;
        let insts0 = self.stats.warp_instructions;
        let flits0 = self.stats.noc_flits;
        let det0 = self.stats.detector_events;
        let l2_0 = self.stats.l2_data_hits
            + self.stats.l2_data_misses
            + self.stats.l2_md_hits
            + self.stats.l2_md_misses;
        let active_stalls0 = self.stats.stalls.noc_full + self.stats.stalls.lhd;
        let next_block0 = self.next_block;
        let drained = self.drain_events();
        self.dispatch_blocks();
        // Phase A: all SM front ends, possibly fanned out over the worker
        // pool; every shared-state effect lands in the per-SM buffers.
        let t0 = self.phase_timing.then(Instant::now);
        self.front_phase();
        // Phase B, in fixed order: per-SM commit (ascending SM index) and
        // NoC arbitration run serially — the NoC is the deterministic
        // routing step that fills the per-shard queues — then the memory
        // shards tick (possibly fanned out over the pool) with effects
        // buffered per shard, and a fixed-order merge applies them exactly
        // as the serial drain would. Detector last, as before.
        let t1 = self.phase_timing.then(Instant::now);
        for s in 0..self.sms.len() {
            self.commit_front(s)?;
        }
        self.noc_tick();
        self.mem_phase();
        self.merge_mem();
        self.detector_tick()?;
        if let (Some(a), Some(b)) = (t0, t1) {
            self.phase_a_nanos += duration_nanos(b - a);
            self.phase_b_nanos += duration_nanos(b.elapsed());
        }
        Ok(drained
            || self.next_block != next_block0
            || self.stats.warp_instructions != insts0
            || self.stats.noc_flits != flits0
            || self.stats.detector_events != det0
            || self.stats.l2_data_hits
                + self.stats.l2_data_misses
                + self.stats.l2_md_hits
                + self.stats.l2_md_misses
                != l2_0
            || self.stats.stalls.noc_full + self.stats.stalls.lhd != active_stalls0
            || self.detector.as_ref().is_some_and(|d| !d.is_idle()))
    }

    // ---- event heap -------------------------------------------------------

    /// Fires all events due at or before `now`; returns `true` if any fired.
    fn drain_events(&mut self) -> bool {
        let mut any = false;
        while matches!(self.heap.peek(), Some(i) if i.time <= self.now) {
            any = true;
            let item = self.heap.pop().expect("peeked");
            match item.ev {
                Ev::WarpResponse {
                    sm,
                    warp,
                    is_store_ack,
                    l1_fill,
                } => {
                    if let Some(line) = l1_fill {
                        let _ = self.sms[sm].l1.access(line, false, false);
                    }
                    if let Some(w) = self.sms[sm].warps[warp].as_mut() {
                        if is_store_ack {
                            w.outstanding_stores = w.outstanding_stores.saturating_sub(1);
                        } else {
                            w.pending_loads = w.pending_loads.saturating_sub(1);
                            if w.pending_loads == 0 && matches!(w.state, WarpState::WaitMem) {
                                w.state = WarpState::Ready { at: self.now };
                            }
                        }
                    }
                }
                Ev::DramDone { part, req } => {
                    if let Some(mut waiters) = self.parts[part].pending_fills.remove(req.line_addr)
                    {
                        for pkt in waiters.drain(..) {
                            self.respond(&pkt, self.now + 4);
                        }
                        // Recycle the drained list; its capacity serves the
                        // next miss on this partition without allocating.
                        self.parts[part].fill_pool.push(waiters);
                    }
                }
            }
        }
        any
    }

    fn respond(&mut self, pkt: &Packet, time: u64) {
        if !pkt.needs_response {
            return;
        }
        let resp_flits = if pkt.is_store_ack {
            1
        } else {
            1 + self.cfg.line_bytes.div_ceil(self.cfg.flit_bytes)
        };
        self.stats.noc_flits += u64::from(resp_flits);
        let l1_fill = pkt.l1_fill.then_some(pkt.line_addr);
        self.push_event(
            time + 8 + u64::from(resp_flits),
            Ev::WarpResponse {
                sm: pkt.sm as usize,
                warp: pkt.warp as usize,
                is_store_ack: pkt.is_store_ack,
                l1_fill,
            },
        );
    }

    // ---- block dispatch ---------------------------------------------------

    fn dispatch_blocks(&mut self) {
        if self.next_block >= self.grid_blocks {
            return;
        }
        let mut dispatched = false;
        let program = self.program.clone().expect("launch in progress");
        for s in 0..self.sms.len() {
            if self.next_block >= self.grid_blocks {
                break;
            }
            let regs_needed = u32::from(program.num_regs()) * self.threads_per_block;
            let shared_needed = program.shared_bytes();
            let sm = &self.sms[s];
            if sm.free_regs < regs_needed || sm.free_shared < shared_needed {
                continue;
            }
            let Some(bslot) = sm.free_block_slot() else {
                continue;
            };
            let Some(wslots) = sm.free_warp_slots(self.warps_per_block as usize) else {
                continue;
            };
            let ctaid = self.next_block;
            self.next_block += 1;
            self.blocks_live += 1;
            dispatched = true;
            let block_slot_global = u8::try_from(s as u32 * self.cfg.blocks_per_sm + bslot as u32)
                .expect("validated: num_sms × blocks_per_sm fits the BlockID field");
            let block = SmBlock {
                ctaid,
                block_slot_global,
                warp_slots: wslots.clone(),
                live_warps: self.warps_per_block,
                barrier_arrived: 0,
                shared: vec![0; (shared_needed as usize).div_ceil(4)],
            };
            let sm = &mut self.sms[s];
            sm.free_regs -= regs_needed;
            sm.free_shared -= shared_needed;
            sm.blocks[bslot] = Some(block);
            for (wi, &slot) in wslots.iter().enumerate() {
                let lanes = (self.threads_per_block - wi as u32 * self.cfg.warp_size)
                    .min(self.cfg.warp_size);
                sm.warps[slot] = Some(Warp::new(
                    slot as u8,
                    bslot,
                    ctaid,
                    wi as u32,
                    lanes,
                    program.num_regs(),
                ));
                sm.occupied |= 1u64 << slot;
                if let Some(det) = &mut self.detector {
                    det.enqueue(DetectorEvent::WarpAssigned {
                        sm: s as u8,
                        warp_slot: slot as u8,
                    });
                }
            }
        }
        // A pass that placed a block may place another next cycle (the loop
        // caps dispatch at one block per SM per cycle); a pass that placed
        // nothing cannot succeed until a block retires and frees resources.
        self.dispatch_hint = dispatched;
    }

    // ---- SM front end (Phase A) and commit (Phase B) ----------------------

    /// Phase A: runs every SM's front end (prepass, issue, execute) with
    /// all shared-state effects deferred into the per-SM
    /// [`front::FrontBuf`]s. Fans out over the worker pool when the
    /// effective `sm_threads` exceeds 1; serial and parallel paths run the
    /// identical per-SM function, which is what makes results
    /// byte-identical across thread counts.
    fn front_phase(&mut self) {
        // Latch the LHD backpressure signal once per cycle (after block
        // dispatch, whose WarpAssigned events have already enqueued): the
        // hardware-realistic registered wire, and the one front-end input
        // that would otherwise couple SMs within a cycle.
        let lhd_open = self
            .detector
            .as_ref()
            .is_none_or(DetectorUnit::can_accept_l1_hit);
        let ctx = FrontCtx {
            cfg: &self.cfg,
            program: self.program.as_deref().expect("launch in progress"),
            params: &self.params,
            now: self.now,
            mem_bytes: self.mem.bytes(),
            grid_blocks: self.grid_blocks,
            threads_per_block: self.threads_per_block,
            detect: self.detector.is_some(),
            lhd_open,
            toggles: self.cfg.toggles(),
        };
        match &self.pool {
            Some(pool) if self.sm_eff > 1 => {
                pool.for_each_mut(&mut self.sms, |_, sm| front::sm_front(&ctx, sm));
            }
            _ => {
                for sm in &mut self.sms {
                    front::sm_front(&ctx, sm);
                }
            }
        }
    }

    /// Phase B for one SM (called in ascending SM order): applies the SM's
    /// buffered effects to shared machine state — functional memory and
    /// register writebacks, detector events in generation order (preserving
    /// the fault-injection RNG stream event for event), L1-hit response
    /// events, statistics and block retirement — then surfaces any deferred
    /// execution error at the same point the single-phase tick aborted.
    fn commit_front(&mut self, s: usize) -> Result<(), SimError> {
        let mut events = std::mem::take(&mut self.sms[s].front.events);
        let lane_buf = std::mem::take(&mut self.sms[s].front.lane_buf);
        for ev in events.drain(..) {
            match ev {
                PendingEvent::Fence { warp_slot, scope } => {
                    if let Some(det) = &mut self.detector {
                        det.enqueue(DetectorEvent::Fence {
                            sm: s as u8,
                            warp_slot,
                            scope,
                        });
                    }
                }
                PendingEvent::Barrier { block_slot } => {
                    if let Some(det) = &mut self.detector {
                        det.enqueue(DetectorEvent::Barrier {
                            sm: s as u8,
                            block_slot,
                        });
                    }
                }
                PendingEvent::Access(acc) => self.commit_access(s, &lane_buf, &acc),
            }
        }
        // Hand the buffers back with their capacity intact.
        self.sms[s].front.events = events;
        self.sms[s].front.lane_buf = lane_buf;
        let front = &mut self.sms[s].front;
        let stats = front.stats;
        let retired = front.blocks_retired;
        let dispatch = front.dispatch;
        let error = front.error.take();
        stats.apply(&mut self.stats);
        if let Some(samp) = &mut self.sample {
            samp.record_sm_insts(s, stats.warp_instructions);
        }
        self.blocks_live -= retired;
        self.dispatch_hint |= dispatch;
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Applies one buffered global access: functional memory, register
    /// writebacks, the detector `Access` event, and its L1-hit response
    /// events. Operand registers are read here, not captured at issue — a
    /// warp issues at most one instruction per cycle and nothing else
    /// touches its registers between the phases, so the values observed are
    /// exactly what the single-phase tick saw (including same-cycle
    /// cross-SM store→load visibility, which follows SM commit order in
    /// both designs).
    fn commit_access(&mut self, s: usize, lane_buf: &[(u32, u64)], acc: &PendingAccess) {
        let slot = acc.warp_slot as usize;
        let mut warp = self.sms[s].warps[slot]
            .take()
            .expect("issuing warp resident");
        let lane_addrs = &lane_buf[acc.lanes.0 as usize..acc.lanes.1 as usize];
        // The lane-access list is only materialized when a detector will
        // consume it, and its buffer is recycled through the detector
        // unit's spare pool rather than allocated per instruction.
        let record = self.detector.is_some();
        let mut accesses: Vec<MemAccess> = match &mut self.detector {
            Some(det) => {
                let mut v = det.take_spare();
                v.reserve(lane_addrs.len());
                v
            }
            None => Vec::new(),
        };
        for &(lane, a) in lane_addrs {
            let kind = match acc.op {
                GlobalOp::Load { dst, .. } => {
                    let v = self.mem.read_word(a);
                    warp.set_reg(lane, dst, v);
                    AccessKind::Load
                }
                GlobalOp::Store { src, .. } => {
                    let v = warp.operand(lane, src);
                    self.mem.write_word(a, v);
                    AccessKind::Store
                }
                GlobalOp::Atomic {
                    op: aop,
                    dst,
                    val,
                    cmp,
                    scope,
                } => {
                    let old = self.mem.read_word(a);
                    let v = warp.operand(lane, val);
                    let c = warp.operand(lane, cmp);
                    self.mem.write_word(a, aop.apply(old, v, c));
                    if let Some(d) = dst {
                        warp.set_reg(lane, d, old);
                    }
                    let kind = match aop {
                        AtomOp::Cas => AtomKind::Cas,
                        AtomOp::Exch => AtomKind::Exch,
                        _ => AtomKind::Other,
                    };
                    AccessKind::Atomic { kind, scope }
                }
            };
            if record {
                accesses.push(MemAccess {
                    kind,
                    addr: a,
                    strong: acc.strong,
                    pc: acc.pc,
                    who: acc.who,
                });
            }
        }
        self.sms[s].warps[slot] = Some(warp);
        if let Some(det) = &mut self.detector {
            det.enqueue(DetectorEvent::Access { accesses });
        }
        for _ in 0..acc.l1_hits {
            self.push_event(
                self.now + u64::from(self.cfg.l1_latency),
                Ev::WarpResponse {
                    sm: s,
                    warp: slot,
                    is_store_ack: false,
                    l1_fill: None,
                },
            );
        }
    }

    // ---- interconnect -----------------------------------------------------

    fn noc_tick(&mut self) {
        // Sampled mode: drain the ghost backlog first. The un-simulated
        // SMs are the majority of the modelled machine, so when their
        // (backlogged) traffic and a detailed SM's packet compete for a
        // partition link, round-robin arbitration would usually favour
        // them; injecting ghosts first reproduces that pressure on the
        // detailed SMs.
        self.inject_ghosts();
        let n = self.sms.len();
        for i in 0..n {
            let s = (self.noc_rr + i) % n;
            if self.sms[s].tx_free_at > self.now || self.sms[s].out_queue.is_empty() {
                continue;
            }
            let part = {
                let pkt = self.sms[s].out_queue.front().expect("non-empty");
                partition_of(&self.cfg, pkt.line_addr)
            };
            if self.parts[part].rx_free_at > self.now {
                continue; // head-of-line blocking at a congested partition
            }
            let mut pkt = self.sms[s].out_queue.pop_front().expect("non-empty");
            let flits = u64::from(pkt.flits);
            self.sms[s].tx_free_at = self.now + flits;
            self.parts[part].rx_free_at = self.now + flits;
            pkt.ready_at = self.now + 8 + flits;
            if let Some(samp) = &mut self.sample {
                let line_bytes = u64::from(self.cfg.line_bytes);
                samp.observe(&pkt, self.cfg.mem_bytes / line_bytes, line_bytes);
            }
            self.parts[part].in_queue.push_back(pkt);
            self.stats.noc_flits += flits;
        }
        self.noc_rr = self.noc_rr.wrapping_add(1);
    }

    /// Sampled-SM mode only: injects the ghost packets the un-simulated
    /// SMs would have routed (see [`crate::sample`]'s module docs for the
    /// model). Ghosts compete for the same per-partition ingest link as
    /// real packets — a partition that already accepted a packet this
    /// cycle makes the ghost wait in the backlog, exactly the
    /// head-of-line blocking a real SM's out-queue exhibits — and count
    /// toward `noc_flits`, which keeps the tick's busy-detection aware of
    /// them. Runs in the serial NoC step with deterministic round-robin
    /// replica assignment, so sampled runs stay byte-identical across
    /// host thread counts.
    fn inject_ghosts(&mut self) {
        let Some(samp) = &mut self.sample else {
            return;
        };
        // One pass over the current backlog: inject where the link is
        // free, requeue the rest for next cycle.
        for _ in 0..samp.stash.len() {
            let Some(mut ghost) = samp.stash.pop_front() else {
                break;
            };
            let part = partition_of(&self.cfg, ghost.line_addr);
            let p = &mut self.parts[part];
            if p.rx_free_at > self.now {
                samp.stash.push_back(ghost);
                continue;
            }
            let flits = u64::from(ghost.flits);
            p.rx_free_at = self.now + flits;
            ghost.ready_at = self.now + 8 + flits;
            p.in_queue.push_back(ghost);
            self.stats.noc_flits += flits;
        }
    }

    /// Ticks every memory shard (L2 partition + DRAM channel), fanned out
    /// over the worker pool when the effective `mem_threads` exceeds 1 and
    /// inline in ascending partition order otherwise. Each shard touches
    /// only its own [`Partition`] and buffers externally visible effects in
    /// its [`crate::memside::MemBuf`]; serial and parallel paths run the
    /// identical per-shard function.
    fn mem_phase(&mut self) {
        let ctx = MemCtx {
            cfg: &self.cfg,
            now: self.now,
            timing: self.phase_timing,
        };
        match &self.pool {
            Some(pool) if self.mem_eff > 1 => {
                pool.for_each_mut(&mut self.parts, |_, part| part.tick(&ctx));
            }
            _ => {
                for part in &mut self.parts {
                    part.tick(&ctx);
                }
            }
        }
    }

    /// Drains the shards' buffered effects into shared state in the fixed
    /// cross-shard order: ascending partition id, and within a shard the
    /// generation order (L2 response before DRAM completion). This is
    /// exactly the order the serial drain produced them, so the event
    /// heap's `(time, seq)` tiebreak — and every effect downstream of it,
    /// including L1 LRU evolution via fill responses — is byte-identical at
    /// any `mem_threads`.
    fn merge_mem(&mut self) {
        for p in 0..self.parts.len() {
            let buf = std::mem::take(&mut self.parts[p].buf);
            buf.stats.apply(&mut self.stats);
            if let Some((pkt, time)) = buf.response {
                self.respond(&pkt, time);
            }
            if let Some((req, done)) = buf.dram_done {
                self.push_event(done, Ev::DramDone { part: p, req });
            }
            self.shard_b_nanos[p] += buf.nanos;
        }
    }

    fn detector_tick(&mut self) -> Result<(), SimError> {
        let toggles = self.cfg.toggles();
        let mut md_lines = Vec::new();
        let Some(det) = &mut self.detector else {
            return Ok(());
        };
        det.tick(self.cfg.detector_throughput, &mut md_lines, &mut self.stats)?;
        if toggles.md {
            for line in md_lines {
                let p = partition_of(&self.cfg, line);
                self.parts[p].in_queue.push_back(Packet {
                    line_addr: line,
                    write: true, // metadata entries are read-modify-written
                    atomic_lanes: 0,
                    metadata: true,
                    needs_response: false,
                    is_store_ack: false,
                    sm: 0,
                    warp: 0,
                    flits: 1,
                    ready_at: self.now + 4,
                    l1_fill: false,
                    ghost: false,
                });
            }
        }
        Ok(())
    }
}

/// Saturating `Duration` → `u64` nanoseconds (phase-timing accumulators).
pub(crate) fn duration_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scord_isa::{KernelBuilder, Scope};

    #[test]
    fn heap_is_a_min_heap_by_time_then_seq() {
        let mut h = BinaryHeap::new();
        h.push(HeapItem {
            time: 5,
            seq: 1,
            ev: Ev::DramDone {
                part: 0,
                req: DramRequest {
                    line_addr: 0,
                    write: false,
                    metadata: false,
                    ghost: false,
                },
            },
        });
        h.push(HeapItem {
            time: 3,
            seq: 2,
            ev: Ev::DramDone {
                part: 1,
                req: DramRequest {
                    line_addr: 0,
                    write: false,
                    metadata: false,
                    ghost: false,
                },
            },
        });
        let first = h.pop().unwrap();
        assert_eq!(first.time, 3);
    }

    #[test]
    fn launch_validates_parameters() {
        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let mut k = KernelBuilder::new("t", 1);
        let p = k.ld_param(0);
        k.st_global(p, 0, 1u32);
        let prog = k.finish().unwrap();
        assert!(matches!(
            gpu.launch(&prog, 0, 32, &[0]),
            Err(SimError::Launch(_))
        ));
        assert!(matches!(
            gpu.launch(&prog, 1, 2048, &[0]),
            Err(SimError::Launch(_))
        ));
        assert!(matches!(
            gpu.launch(&prog, 1, 32, &[]),
            Err(SimError::Launch(_))
        ));
    }

    /// `Gpu` must stay `Send` so independent simulations can be sharded
    /// across host threads (the harness's parallel executor relies on it).
    #[test]
    fn gpu_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Gpu>();
        assert_send::<SimError>();
    }

    #[test]
    fn geometry_overflowing_block_id_field_is_a_config_error() {
        // 32 SMs × 8 blocks = 256 slots > the 7-bit BlockID field (128).
        let cfg = GpuConfig {
            num_sms: 32,
            ..GpuConfig::paper_default()
        };
        assert!(matches!(Gpu::try_new(cfg), Err(SimError::Config(_))));
        // 33 warp slots > the 5-bit WarpID field (32).
        let cfg = GpuConfig {
            warps_per_sm: 33,
            ..GpuConfig::paper_default()
        };
        assert!(matches!(Gpu::try_new(cfg), Err(SimError::Config(msg)) if msg.contains("WarpID")));
        // The paper's default is exactly at the limits and must pass.
        assert!(GpuConfig::paper_default().validate().is_ok());
        assert!(GpuConfig {
            num_sms: 16,
            ..GpuConfig::paper_default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "BlockID")]
    fn gpu_new_panics_on_aliasing_geometry() {
        let _ = Gpu::new(GpuConfig {
            num_sms: 200,
            ..GpuConfig::paper_default()
        });
    }

    /// The quiescence skip must reproduce every statistic of un-skipped
    /// execution bit-for-bit; `cycles_skipped` is the one diagnostic field
    /// allowed to differ. Exercised per-`Gpu` via `GpuConfig::cycle_skip`
    /// (not the process-wide override, which other tests may share). The
    /// kernel mixes the wait states the skip reasons about: cold global
    /// loads (memory), a barrier, a device fence and a final store drain.
    #[test]
    fn cycle_skip_reproduces_stats_exactly() {
        let run = |cycle_skip: bool| {
            let cfg = GpuConfig {
                cycle_skip,
                ..GpuConfig::paper_default()
            };
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.mem_mut().alloc_words(4096);
            let mut k = KernelBuilder::new("skip_mix", 1);
            let base = k.ld_param(0);
            let gtid = k.global_tid();
            let addr = k.index_addr(base, gtid, 4);
            let v = k.ld_global(addr, 0);
            k.bar();
            k.fence(Scope::Device);
            let v2 = k.alu(scord_isa::AluOp::Add, v, 1u32);
            k.st_global(addr, 0, v2);
            k.exit();
            let prog = k.finish().unwrap();
            gpu.launch(&prog, 8, 64, &[buf.addr()])
                .expect("kernel completes")
        };
        let mut skipping = run(true);
        let ticking = run(false);
        assert_eq!(ticking.cycles_skipped, 0, "disabled skip must never jump");
        assert!(
            skipping.cycles_skipped > 0,
            "the stall-heavy kernel must exercise the skip"
        );
        skipping.cycles_skipped = 0;
        assert_eq!(
            skipping, ticking,
            "skipped execution must reproduce every counter exactly"
        );
    }

    /// Pins the line→partition striping so the router, the detector
    /// metadata path, and the quiescence scan (which all go through
    /// [`partition_of`] — the bug this guards against was `sm_wake`
    /// recomputing the mapping inline) can never silently diverge.
    #[test]
    fn partition_mapping_is_pinned() {
        let cfg = GpuConfig::paper_default(); // 12 channels, 128 B lines
        assert_eq!(partition_of(&cfg, 0), 0);
        assert_eq!(partition_of(&cfg, 128), 1);
        assert_eq!(partition_of(&cfg, 130), 1, "keys on the line, not the byte");
        assert_eq!(partition_of(&cfg, 11 * 128), 11);
        assert_eq!(partition_of(&cfg, 12 * 128), 0, "wraps at channel count");
        // Non-power-of-two channel counts stripe by modulo, not masking.
        let odd = GpuConfig { channels: 7, ..cfg };
        for line in 0..64u64 {
            assert_eq!(partition_of(&odd, line * 128), (line % 7) as usize);
        }
    }

    /// The sharded memory-side drain must reproduce serial results
    /// bit-for-bit, including on a non-power-of-two channel count and with
    /// detection (metadata traffic) on. Exercised per-`Gpu` via
    /// `GpuConfig::mem_threads` (not the process-wide override, which other
    /// tests may share); the kernel mixes L2 hits, misses with writebacks,
    /// atomics and a racy scope so every buffered-effect path fires.
    #[test]
    fn sharded_mem_drain_reproduces_stats_exactly() {
        let run = |mem_threads: u32| {
            let cfg = GpuConfig {
                channels: 7,
                mem_threads,
                detection: crate::DetectionMode::scord(),
                ..GpuConfig::paper_default()
            };
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.mem_mut().alloc_words(4096);
            let mut k = KernelBuilder::new("shard_mix", 1);
            let base = k.ld_param(0);
            let gtid = k.global_tid();
            let addr = k.index_addr(base, gtid, 4);
            let v = k.ld_global(addr, 0);
            // Block-scoped atomic shared across blocks: races the detector
            // reports.
            k.atom_add_noret(base, 0, 1u32, Scope::Block);
            k.fence(Scope::Device);
            let v2 = k.alu(scord_isa::AluOp::Add, v, 1u32);
            k.st_global(addr, 0, v2);
            k.exit();
            let prog = k.finish().unwrap();
            let stats = gpu
                .launch(&prog, 8, 64, &[buf.addr()])
                .expect("kernel completes");
            // Sorted: the race *set* is deterministic, but its insertion
            // order within one event can follow detector-internal hash
            // iteration (varies per detector instance, independent of
            // thread counts).
            let mut races: Vec<_> = gpu.races().expect("detection on").unique_races().collect();
            races.sort_unstable_by_key(|&(pc, kind)| (pc, format!("{kind:?}")));
            (stats, races)
        };
        let serial = run(1);
        for mem_threads in [2, 4] {
            assert_eq!(
                serial,
                run(mem_threads),
                "mem_threads={mem_threads} must be byte-identical to serial"
            );
        }
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let mut k = KernelBuilder::new("oob", 0);
        let bad = k.mov(0xFFFF_FFF0u32);
        let _ = k.ld_global(bad, 0);
        let prog = k.finish().unwrap();
        assert!(matches!(
            gpu.launch(&prog, 1, 32, &[]),
            Err(SimError::AddressOutOfBounds { .. })
        ));
    }
}
