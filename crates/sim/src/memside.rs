//! Phase B's memory side, sharded by L2 partition / DRAM channel.
//!
//! Each [`Partition`] bundles one L2 slice with its DRAM channel — the
//! hardware already keeps these independent (addresses are striped across
//! partitions by line, and a channel only ever serves its own slice), so
//! the shard boundary is the natural one. [`Partition::tick`] advances one
//! shard one cycle touching nothing but that shard: every externally
//! visible effect (the L2-hit/fill response, a completed DRAM read, stat
//! deltas, the optional per-shard clock) lands in the shard's [`MemBuf`],
//! exactly as [`crate::front`] defers Phase A effects into per-SM buffers.
//! `Gpu::merge_mem` then drains the buffers in ascending partition order —
//! response before DRAM completion within a shard, matching the order the
//! serial drain produced them — so the event heap's `(time, seq)` tiebreak,
//! and therefore every downstream result, is byte-identical at any
//! `mem_threads`.
//!
//! Inputs are latched before the fan-out: `now` and the config are frozen
//! in [`MemCtx`], and all cross-shard traffic (NoC routing, detector
//! metadata writebacks) is deposited into `in_queue` by the serial stages
//! that precede the shard tick. Nothing a shard reads can be written by
//! another shard in the same cycle.

use std::collections::VecDeque;
use std::time::Instant;

use scord_core::FlatMap;

use crate::gpu::{duration_nanos, Packet};
use crate::{Cache, CacheOutcome, DramChannel, DramRequest, GpuConfig, SimStats};

/// Stat deltas accumulated by one shard during its tick. All counters are
/// commutative, but the merge folds them in ascending partition order
/// anyway — the same order the serial drain incremented them.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct MemStats {
    pub l2_data_hits: u64,
    pub l2_data_misses: u64,
    pub l2_md_hits: u64,
    pub l2_md_misses: u64,
    pub dram_data_reads: u64,
    pub dram_data_writebacks: u64,
    pub dram_metadata_reads: u64,
    pub dram_metadata_writebacks: u64,
}

impl MemStats {
    /// Folds this shard's deltas into the global statistics.
    pub(crate) fn apply(&self, stats: &mut SimStats) {
        stats.l2_data_hits += self.l2_data_hits;
        stats.l2_data_misses += self.l2_data_misses;
        stats.l2_md_hits += self.l2_md_hits;
        stats.l2_md_misses += self.l2_md_misses;
        stats.dram.data_reads += self.dram_data_reads;
        stats.dram.data_writebacks += self.dram_data_writebacks;
        stats.dram.metadata_reads += self.dram_metadata_reads;
        stats.dram.metadata_writebacks += self.dram_metadata_writebacks;
    }
}

/// One shard's buffered externally visible effects for the current cycle.
///
/// The L2 serves at most one packet per partition per cycle and a DRAM
/// channel starts at most one request per cycle, so single `Option` slots
/// cover a whole cycle without allocating.
#[derive(Debug, Default)]
pub(crate) struct MemBuf {
    pub stats: MemStats,
    /// An L2 hit's deferred response: `(packet, response-ready cycle)`.
    /// Replayed through `Gpu::respond` at merge (which also no-ops for
    /// packets not needing one, e.g. detector metadata writes).
    pub response: Option<(Packet, u64)>,
    /// A DRAM read that started this cycle: `(request, completion cycle)`.
    /// Becomes an `Ev::DramDone` heap event at merge.
    pub dram_done: Option<(DramRequest, u64)>,
    /// This shard's wall time this cycle; stays 0 unless phase timing is
    /// on (`MemCtx::timing`).
    pub nanos: u64,
}

/// One memory shard: an L2 partition plus the DRAM channel behind it.
#[derive(Debug)]
pub(crate) struct Partition {
    pub l2: Cache,
    /// The shard's event queue: requests routed here by the NoC plus
    /// detector metadata writebacks, consumed in arrival order.
    pub in_queue: VecDeque<Packet>,
    pub rx_free_at: u64,
    pub l2_free_at: u64,
    pub dram: DramChannel,
    /// Packets waiting on an in-flight DRAM read, keyed by line address.
    /// Flat table + waiter-`Vec` pool: miss handling and fill wakeup sit on
    /// the per-access hot path, so neither should allocate in steady state.
    pub pending_fills: FlatMap<Vec<Packet>>,
    /// Spare waiter lists recycled by fill wakeups (capacity retained).
    pub fill_pool: Vec<Vec<Packet>>,
    /// L2 service cycles consumed by real (non-ghost) packets. Under
    /// sampled-SM mode this is the memory system's irreducible service
    /// demand — it does not shrink when SMs are added — and feeds the
    /// memory-bound term of the cycle extrapolation.
    pub real_l2_busy: u64,
    /// DRAM channel busy cycles consumed by real (non-ghost) requests.
    pub real_dram_busy: u64,
    /// This cycle's buffered effects, drained by `Gpu::merge_mem`.
    pub buf: MemBuf,
}

/// Cycle inputs latched before the shard fan-out.
pub(crate) struct MemCtx<'a> {
    pub cfg: &'a GpuConfig,
    pub now: u64,
    /// Record per-shard wall time into [`MemBuf::nanos`].
    pub timing: bool,
}

impl Partition {
    pub(crate) fn new(cfg: &GpuConfig) -> Self {
        Partition {
            l2: Cache::new(cfg.l2_slice_bytes(), cfg.l2_ways, cfg.line_bytes),
            in_queue: VecDeque::new(),
            rx_free_at: 0,
            l2_free_at: 0,
            dram: DramChannel::new(cfg.dram, cfg.banks_per_channel, cfg.row_bytes),
            pending_fills: FlatMap::new(),
            fill_pool: Vec::new(),
            real_l2_busy: 0,
            real_dram_busy: 0,
            buf: MemBuf::default(),
        }
    }

    /// Advances this shard one cycle, buffering every externally visible
    /// effect in [`Self::buf`]. Runs on a pool worker when `mem_threads`
    /// exceeds 1 and inline otherwise — the identical function either way,
    /// which is what makes results byte-identical across thread counts.
    pub(crate) fn tick(&mut self, ctx: &MemCtx) {
        let t0 = ctx.timing.then(Instant::now);
        self.buf.stats = MemStats::default();
        self.buf.response = None;
        self.buf.dram_done = None;
        self.buf.nanos = 0;
        // L2 service: one packet per cycle (plus atomic serialization).
        if self.l2_free_at <= ctx.now {
            let ready = matches!(
                self.in_queue.front(),
                Some(pkt) if pkt.ready_at <= ctx.now
            );
            if ready {
                let pkt = self.in_queue.pop_front().expect("non-empty");
                let write = pkt.write || pkt.atomic_lanes > 0;
                let outcome = self.l2.access(pkt.line_addr, write, pkt.metadata);
                let busy = 1 + u64::from(pkt.atomic_lanes / 2);
                self.l2_free_at = ctx.now + busy;
                if !pkt.ghost {
                    self.real_l2_busy += busy;
                }
                match outcome {
                    CacheOutcome::Hit => {
                        if pkt.metadata {
                            self.buf.stats.l2_md_hits += 1;
                        } else {
                            self.buf.stats.l2_data_hits += 1;
                        }
                        self.buf.response = Some((pkt, ctx.now + u64::from(ctx.cfg.l2_latency)));
                    }
                    CacheOutcome::Miss { writeback } => {
                        if pkt.metadata {
                            self.buf.stats.l2_md_misses += 1;
                            self.buf.stats.dram_metadata_reads += 1;
                        } else {
                            self.buf.stats.l2_data_misses += 1;
                            self.buf.stats.dram_data_reads += 1;
                        }
                        if let Some(v) = writeback {
                            if v.metadata {
                                self.buf.stats.dram_metadata_writebacks += 1;
                            } else {
                                self.buf.stats.dram_data_writebacks += 1;
                            }
                            self.dram.push(DramRequest {
                                line_addr: v.line_addr,
                                write: true,
                                metadata: v.metadata,
                                // A victim dirtied by real traffic is real
                                // demand even when a ghost evicts it.
                                ghost: false,
                            });
                        }
                        self.dram.push(DramRequest {
                            line_addr: pkt.line_addr,
                            write: false,
                            metadata: pkt.metadata,
                            ghost: pkt.ghost,
                        });
                        self.pending_fills
                            .get_or_insert_with(pkt.line_addr, || {
                                // Recycled lists keep their capacity; fresh
                                // ones reserve for the common few-waiter
                                // case up front.
                                self.fill_pool
                                    .pop()
                                    .unwrap_or_else(|| Vec::with_capacity(8))
                            })
                            .push(pkt);
                    }
                }
            }
        }
        // DRAM service: at most one request starts per channel per cycle.
        if let Some((req, done)) = self.dram.tick(ctx.now) {
            if !req.ghost {
                self.real_dram_busy += done - ctx.now;
            }
            if !req.write {
                self.buf.dram_done = Some((req, done));
            }
        }
        if let Some(t0) = t0 {
            self.buf.nanos = duration_nanos(t0.elapsed());
        }
    }

    /// This shard's earliest future wake cycle for the quiescence skip:
    /// the head queued packet's L2 service time and the DRAM channel's
    /// busy horizon, both clamped to `floor`. `u64::MAX` when the shard is
    /// fully idle (it then wakes via the event heap — a pending fill's
    /// `DramDone` — or not at all).
    pub(crate) fn wake(&self, now: u64, floor: u64) -> u64 {
        let mut t = u64::MAX;
        if let Some(front) = self.in_queue.front() {
            let ready = self.l2_free_at.max(front.ready_at);
            t = t.min(ready.max(floor));
        }
        if let Some(busy_until) = self.dram.wake_at(now) {
            t = t.min(busy_until.max(floor));
        }
        t
    }
}
