//! Streaming multiprocessor state: resident blocks, warp slots, the L1 data
//! cache and the NoC injection queue.

use std::collections::VecDeque;

use crate::front::FrontBuf;
use crate::{Cache, Packet, Warp};

/// A threadblock resident on an SM.
#[derive(Debug, Clone)]
pub struct SmBlock {
    /// Grid-wide block index (`ctaid`).
    pub ctaid: u32,
    /// Global hardware block slot (`sm * blocks_per_sm + slot`).
    pub block_slot_global: u8,
    /// Warp slots belonging to this block.
    pub warp_slots: Vec<usize>,
    /// Warps that have not yet exited.
    pub live_warps: u32,
    /// Warps currently parked at the barrier.
    pub barrier_arrived: u32,
    /// Scratchpad contents.
    pub shared: Vec<u32>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index.
    pub id: u8,
    /// Hardware warp slots.
    pub warps: Vec<Option<Warp>>,
    /// Bit `i` set ⇔ `warps[i]` is resident. Maintained by block dispatch
    /// and retirement so the per-cycle scheduler loops touch only live
    /// slots instead of scanning every `Option<Warp>` (most workloads leave
    /// the majority of the 32 slots empty).
    pub occupied: u64,
    /// Resident-block slots.
    pub blocks: Vec<Option<SmBlock>>,
    /// Loose-round-robin scheduler pointer.
    pub rr: usize,
    /// NoC injection queue (bounded by `GpuConfig::noc_queue`).
    pub out_queue: VecDeque<Packet>,
    /// Injection link busy-until cycle.
    pub tx_free_at: u64,
    /// Private L1 data cache (timing only).
    pub l1: Cache,
    /// Registers not yet claimed by resident blocks.
    pub free_regs: u32,
    /// Scratchpad bytes not yet claimed.
    pub free_shared: u32,
    /// Phase-A output buffer: shared-state effects this SM's front end
    /// generated this cycle, drained serially by Phase B (see
    /// [`crate::front`]).
    pub(crate) front: FrontBuf,
}

impl Sm {
    /// Creates an empty SM.
    #[must_use]
    pub fn new(
        id: u8,
        warps_per_sm: u32,
        blocks_per_sm: u32,
        l1: Cache,
        regs: u32,
        shared: u32,
    ) -> Self {
        Sm {
            id,
            occupied: 0,
            warps: (0..warps_per_sm).map(|_| None).collect(),
            blocks: (0..blocks_per_sm).map(|_| None).collect(),
            rr: 0,
            out_queue: VecDeque::new(),
            tx_free_at: 0,
            l1,
            free_regs: regs,
            free_shared: shared,
            front: FrontBuf::default(),
        }
    }

    /// Index of a free block slot, if any.
    #[must_use]
    pub fn free_block_slot(&self) -> Option<usize> {
        self.blocks.iter().position(Option::is_none)
    }

    /// Indices of up to `n` free warp slots (`None` if fewer are free).
    #[must_use]
    pub fn free_warp_slots(&self, n: usize) -> Option<Vec<usize>> {
        let free: Vec<usize> = self
            .warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_none())
            .map(|(i, _)| i)
            .take(n)
            .collect();
        (free.len() == n).then_some(free)
    }

    /// `true` when no blocks are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Option::is_none)
    }

    /// Rebuilds [`Sm::occupied`] from the warp slots (used at launch reset,
    /// where any leftover residency must be reflected rather than assumed
    /// away).
    pub fn recompute_occupied(&mut self) {
        self.occupied = self
            .warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_some())
            .fold(0, |m, (i, _)| m | (1u64 << i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> Sm {
        Sm::new(0, 4, 2, Cache::new(1024, 2, 128), 1000, 4096)
    }

    #[test]
    fn fresh_sm_is_empty_with_free_slots() {
        let s = sm();
        assert!(s.is_empty());
        assert_eq!(s.free_block_slot(), Some(0));
        assert_eq!(s.free_warp_slots(4).unwrap(), vec![0, 1, 2, 3]);
        assert!(s.free_warp_slots(5).is_none());
    }

    #[test]
    fn occupied_warp_slots_are_skipped() {
        let mut s = sm();
        s.warps[1] = Some(Warp::new(1, 0, 0, 0, 32, 2));
        assert_eq!(s.free_warp_slots(3).unwrap(), vec![0, 2, 3]);
        assert!(s.free_warp_slots(4).is_none());
    }
}
