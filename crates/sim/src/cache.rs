//! Timing-only set-associative cache model (tag array + LRU, no data —
//! function lives in [`crate::DeviceMemory`]).

/// What happened on a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; if allocation evicted a dirty victim its line address is
    /// reported so the caller can generate a writeback.
    Miss {
        /// Dirty victim evicted by the fill, if any, with its metadata flag.
        writeback: Option<Victim>,
    },
}

/// A dirty line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line address of the victim.
    pub line_addr: u64,
    /// `true` if the victim held detector metadata (for Figure 9's traffic
    /// split).
    pub metadata: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    metadata: bool,
    last_use: u64,
}

const EMPTY: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    metadata: false,
    last_use: 0,
};

/// A set-associative, LRU, write-back/write-allocate tag array.
///
/// The L1 uses it in read-only mode for global data (write-evict: stores
/// invalidate and go through); the L2 slices use the full write-back
/// behaviour.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    /// Builds a cache of `bytes` capacity with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    #[must_use]
    pub fn new(bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        let total_lines = (bytes / line_bytes) as usize;
        let ways = ways as usize;
        assert!(ways > 0 && total_lines >= ways, "degenerate cache geometry");
        let sets = total_lines / ways;
        Cache {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            lines: vec![EMPTY; sets * ways],
            tick: 0,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.line_shift) % self.sets as u64) as usize
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        (line_addr >> self.line_shift) / self.sets as u64
    }

    /// Aligns an address down to its line.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.line_shift) - 1)
    }

    /// Probes without modifying state.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let set = self.set_of(la);
        let tag = self.tag_of(la);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`. On a miss the line is filled (allocate-on-miss);
    /// `write` marks it dirty; `metadata` tags the line for traffic
    /// accounting.
    pub fn access(&mut self, addr: u64, write: bool, metadata: bool) -> CacheOutcome {
        self.tick += 1;
        let la = self.line_addr(addr);
        let set = self.set_of(la);
        let tag = self.tag_of(la);
        let base = set * self.ways;
        // Hit path.
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                l.last_use = self.tick;
                l.dirty |= write;
                return CacheOutcome::Hit;
            }
        }
        // Miss: pick LRU victim.
        let victim_idx = (base..base + self.ways)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid {
                    l.last_use
                } else {
                    0
                }
            })
            .expect("ways > 0");
        let victim = self.lines[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            Some(Victim {
                line_addr: (victim.tag * self.sets as u64 + set as u64) << self.line_shift,
                metadata: victim.metadata,
            })
        } else {
            None
        };
        self.lines[victim_idx] = Line {
            tag,
            valid: true,
            dirty: write,
            metadata,
            last_use: self.tick,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Invalidates the line covering `addr` (no writeback — used for the
    /// L1's global write-evict policy, where global lines are never dirty).
    pub fn invalidate(&mut self, addr: u64) {
        let la = self.line_addr(addr);
        let set = self.set_of(la);
        let tag = self.tag_of(la);
        let base = set * self.ways;
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                l.valid = false;
            }
        }
    }

    /// Drops every line.
    pub fn flush(&mut self) {
        self.lines.fill(EMPTY);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(1024, 2, 128);
        assert!(matches!(
            c.access(0, false, false),
            CacheOutcome::Miss { writeback: None }
        ));
        assert_eq!(c.access(64, false, false), CacheOutcome::Hit, "same line");
        assert!(c.probe(127));
        assert!(!c.probe(128));
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 4 sets of 128B: lines 0 and 512 share set 0... with
        // sets=4: set = (addr/128) % 4.
        let mut c = Cache::new(1024, 2, 128);
        c.access(0, false, false); // set 0 way A
        c.access(512, false, false); // set 0 way B
        c.access(0, false, false); // touch A
        c.access(1024, false, false); // evicts B (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert!(c.probe(1024));
    }

    #[test]
    fn dirty_eviction_reports_writeback_with_correct_address() {
        let mut c = Cache::new(1024, 2, 128);
        c.access(0, true, false);
        c.access(512, false, false);
        c.access(1024, false, false); // evicts dirty line 0
        match c.access(1536, false, false) {
            CacheOutcome::Miss { writeback } => {
                // line 0 was already evicted by the 1024 access
                assert!(writeback.is_none() || writeback.unwrap().line_addr != 0);
            }
            CacheOutcome::Hit => panic!("expected miss"),
        }
        // Direct check: dirty line evicted yields its address back.
        let mut c = Cache::new(256, 1, 128); // direct-mapped, 2 sets
        c.access(0, true, true);
        match c.access(256, false, false) {
            CacheOutcome::Miss {
                writeback: Some(v), ..
            } => {
                assert_eq!(v.line_addr, 0);
                assert!(v.metadata);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line_silently() {
        let mut c = Cache::new(1024, 2, 128);
        c.access(0, true, false);
        c.invalidate(64);
        assert!(!c.probe(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Cache::new(1024, 2, 128);
        c.access(0, false, false);
        c.flush();
        assert!(!c.probe(0));
    }

    /// An L2 slice's capacity is `l2_bytes / channels`, which for
    /// non-power-of-two channel counts (the paper default is 12; the
    /// sharded-drain tests also use 7) yields an odd byte count and a
    /// non-power-of-two set count. Set indexing is modulo, not masking, so
    /// the tag/set round trip must stay lossless — a dirty victim's
    /// reconstructed writeback address has to be the line that was filled.
    #[test]
    fn odd_slice_geometry_round_trips_victim_addresses() {
        // 1.5 MB / 7 channels = 224_694 B → 1755 lines → 219 sets × 8 ways.
        let slice_bytes = ((3u32 << 19) / 7) / 128 * 128;
        let mut c = Cache::new(slice_bytes, 8, 128);
        // Fill one set to capacity with dirty lines, then overflow it: the
        // victim must report the exact line address written.
        let sets = 219u64;
        let set_stride = sets * 128; // same set, successive tags
        for way in 0..8u64 {
            let addr = way * set_stride;
            assert!(matches!(
                c.access(addr, true, false),
                CacheOutcome::Miss { writeback: None }
            ));
        }
        match c.access(8 * set_stride, false, false) {
            CacheOutcome::Miss {
                writeback: Some(v), ..
            } => assert_eq!(v.line_addr, 0, "LRU victim is the first fill"),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        // Every resident line still hits after the round trip.
        for way in 1..8u64 {
            assert_eq!(c.access(way * set_stride, false, false), CacheOutcome::Hit);
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(256, 1, 128);
        c.access(0, false, false);
        c.access(0, true, false); // dirty via write hit
        match c.access(256, false, false) {
            CacheOutcome::Miss {
                writeback: Some(v), ..
            } => assert_eq!(v.line_addr, 0),
            other => panic!("expected writeback, got {other:?}"),
        }
    }
}
