//! Warp state: registers, the SIMT reconvergence stack, and scheduling
//! status.

use scord_isa::{Operand, Pc, Reg, Scope};

/// Sentinel reconvergence PC for the root frame (never reached).
pub const RPC_NONE: Pc = Pc::MAX;

/// One SIMT stack frame: the lanes in `mask` execute from `pc` and
/// reconverge at `rpc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Current program counter of this frame.
    pub pc: Pc,
    /// Reconvergence point (frame is popped when `pc` reaches it).
    pub rpc: Pc,
    /// Active-lane mask.
    pub mask: u32,
}

/// Why a warp is not currently issuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Can issue once `at` is reached.
    Ready {
        /// Earliest issue cycle.
        at: u64,
    },
    /// Blocked on outstanding memory responses.
    WaitMem,
    /// Executing a fence: first drains outstanding stores, then waits until
    /// the fence latency elapses (`end` is set once draining completes).
    WaitFence {
        /// Completion time, once the store queue drained.
        end: Option<u64>,
        /// Fence scope (device fences cost more).
        scope: Scope,
    },
    /// Parked at a barrier.
    WaitBarrier,
    /// All lanes exited.
    Done,
}

/// A resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Hardware warp slot within the SM.
    pub warp_slot: u8,
    /// Index of the owning block's slot within the SM.
    pub block_index: usize,
    /// The block's grid-wide index (`ctaid`).
    pub ctaid: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Registers, `num_regs` per lane, lane-major.
    regs: Vec<u32>,
    num_regs: u16,
    /// SIMT stack; empty means the warp has exited.
    pub frames: Vec<Frame>,
    /// Lanes that have not executed `exit`.
    pub live_mask: u32,
    /// Scheduling state.
    pub state: WarpState,
    /// Outstanding load/atomic responses.
    pub pending_loads: u32,
    /// Outstanding store acknowledgements (drained by fences).
    pub outstanding_stores: u32,
}

impl Warp {
    /// Creates a warp of `lanes` live threads starting at pc 0.
    #[must_use]
    pub fn new(
        warp_slot: u8,
        block_index: usize,
        ctaid: u32,
        warp_in_block: u32,
        lanes: u32,
        num_regs: u16,
    ) -> Self {
        assert!((1..=32).contains(&lanes), "warp must have 1..=32 lanes");
        let live_mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        Warp {
            warp_slot,
            block_index,
            ctaid,
            warp_in_block,
            regs: vec![0; usize::from(num_regs) * 32],
            num_regs,
            frames: vec![Frame {
                pc: 0,
                rpc: RPC_NONE,
                mask: live_mask,
            }],
            live_mask,
            state: WarpState::Ready { at: 0 },
            pending_loads: 0,
            outstanding_stores: 0,
        }
    }

    /// Reads lane `lane`'s register `r`.
    #[must_use]
    pub fn reg(&self, lane: u32, r: Reg) -> u32 {
        self.regs[lane as usize * usize::from(self.num_regs) + r.index()]
    }

    /// Writes lane `lane`'s register `r`.
    pub fn set_reg(&mut self, lane: u32, r: Reg, v: u32) {
        self.regs[lane as usize * usize::from(self.num_regs) + r.index()] = v;
    }

    /// Evaluates an operand for a lane.
    #[must_use]
    pub fn operand(&self, lane: u32, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(lane, r),
            Operand::Imm(v) => v,
        }
    }

    /// Returns the executing `(pc, mask)` after popping reconverged or empty
    /// frames, or `None` if the warp has exited.
    pub fn fetch(&mut self) -> Option<(Pc, u32)> {
        while let Some(top) = self.frames.last() {
            if top.mask == 0 || top.pc == top.rpc {
                self.frames.pop();
                continue;
            }
            return Some((top.pc, top.mask));
        }
        None
    }

    /// Advances the top frame past the current instruction.
    pub fn advance(&mut self) {
        if let Some(top) = self.frames.last_mut() {
            top.pc += 1;
        }
    }

    /// Redirects the top frame (uniform jump).
    pub fn jump(&mut self, target: Pc) {
        if let Some(top) = self.frames.last_mut() {
            top.pc = target;
        }
    }

    /// Executes a possibly-divergent branch for the top frame.
    ///
    /// `taken` is the subset of active lanes whose condition selects
    /// `target`; the rest continue at `fallthrough`. Both paths reconverge at
    /// `reconv`, which the builder guarantees post-dominates them.
    pub fn branch(&mut self, taken: u32, target: Pc, fallthrough: Pc, reconv: Pc) {
        let n = self.frames.len();
        let top = self.frames.last_mut().expect("branch on exited warp");
        let active = top.mask;
        let fall = active & !taken;
        debug_assert_eq!(taken & !active, 0, "taken lanes must be active");
        if taken == active {
            top.pc = target;
            return;
        }
        if taken == 0 {
            top.pc = fallthrough;
            return;
        }
        // Divergence: the current frame becomes the reconvergence frame.
        top.pc = reconv;
        // Collapse the frame if it is now a pure placeholder whose parent
        // already waits at the same point (keeps loop stacks bounded).
        if top.rpc == reconv && n >= 2 && self.frames[n - 2].pc == reconv {
            debug_assert_eq!(
                self.frames[n - 2].mask & active,
                active,
                "parent frame must cover collapsed lanes"
            );
            self.frames.pop();
        }
        if fall != 0 && fallthrough != reconv {
            self.frames.push(Frame {
                pc: fallthrough,
                rpc: reconv,
                mask: fall,
            });
        }
        if taken != 0 && target != reconv {
            self.frames.push(Frame {
                pc: target,
                rpc: reconv,
                mask: taken,
            });
        }
        debug_assert!(
            self.frames.len() <= 64,
            "SIMT stack runaway: unstructured control flow?"
        );
    }

    /// Removes `mask` lanes from execution (the `exit` instruction).
    pub fn exit_lanes(&mut self, mask: u32) {
        self.live_mask &= !mask;
        for f in &mut self.frames {
            f.mask &= !mask;
        }
        while matches!(self.frames.last(), Some(f) if f.mask == 0) {
            self.frames.pop();
        }
    }

    /// `true` once every lane has exited.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.frames.is_empty() || self.live_mask == 0
    }

    /// `true` if the warp is fully converged (all live lanes in one frame) —
    /// required at barriers.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self.frames.last(), Some(f) if f.mask == self.live_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp() -> Warp {
        Warp::new(0, 0, 0, 0, 32, 8)
    }

    #[test]
    fn fresh_warp_executes_from_zero_fully_converged() {
        let mut w = warp();
        assert_eq!(w.fetch(), Some((0, u32::MAX)));
        assert!(w.converged());
        w.advance();
        assert_eq!(w.fetch(), Some((1, u32::MAX)));
    }

    #[test]
    fn partial_warp_mask() {
        let mut w = Warp::new(0, 0, 0, 0, 20, 4);
        assert_eq!(w.fetch().unwrap().1, (1 << 20) - 1);
    }

    #[test]
    fn uniform_branches_do_not_push_frames() {
        let mut w = warp();
        w.branch(u32::MAX, 10, 1, 20); // all taken
        assert_eq!(w.frames.len(), 1);
        assert_eq!(w.fetch(), Some((10, u32::MAX)));
        w.branch(0, 30, 11, 20); // none taken
        assert_eq!(w.fetch(), Some((11, u32::MAX)));
    }

    #[test]
    fn divergent_branch_splits_and_reconverges() {
        let mut w = warp();
        // Lanes 0..16 take the branch to 10; others fall through to 1;
        // reconvergence at 20.
        let taken = 0x0000_FFFF;
        w.branch(taken, 10, 1, 20);
        // Taken path executes first (pushed last).
        assert_eq!(w.fetch(), Some((10, taken)));
        w.jump(20); // taken path reaches reconvergence
        assert_eq!(w.fetch(), Some((1, !taken)), "fall-through path runs");
        w.jump(20);
        assert_eq!(
            w.fetch(),
            Some((20, u32::MAX)),
            "all lanes reconverge at 20 in the parent frame"
        );
    }

    #[test]
    fn branch_to_reconvergence_skips_empty_child() {
        let mut w = warp();
        // if_then shape: taken lanes skip to reconv (else-less if).
        let skip = 0xFF00_0000;
        w.branch(skip, 20, 1, 20);
        assert_eq!(w.fetch(), Some((1, !skip)), "body runs for the rest");
        w.jump(20);
        assert_eq!(w.fetch(), Some((20, u32::MAX)));
    }

    #[test]
    fn loop_stack_stays_bounded() {
        let mut w = warp();
        // while-loop shape: branch at pc 1 exits to 5 (reconv 5), body 2..4,
        // jump back to 1. Lanes leave one per iteration.
        let mut exited = 0u32;
        for lane in 0..32 {
            // Branch: lanes <= lane exit.
            exited |= 1 << lane;
            let (pc, _mask) = w.fetch().expect("warp alive");
            assert!(pc == 0 || pc == 1 || pc == 2);
            w.jump(1);
            w.branch(exited & w.frames.last().unwrap().mask, 5, 2, 5);
            assert!(
                w.frames.len() <= 2,
                "collapse keeps the loop stack at ≤2 frames (iter {lane}, depth {})",
                w.frames.len()
            );
            if lane < 31 {
                let (pc, mask) = w.fetch().unwrap();
                assert_eq!(pc, 2, "body executes for remaining lanes");
                assert_eq!(mask, !exited);
            }
        }
        assert_eq!(w.fetch(), Some((5, u32::MAX)), "all reconverge at exit");
    }

    #[test]
    fn nested_divergence() {
        let mut w = warp();
        let outer = 0x0000_FFFF;
        w.branch(outer, 10, 1, 30); // outer if
        assert_eq!(w.fetch(), Some((10, outer)));
        let inner = 0x0000_00FF;
        w.branch(inner, 15, 11, 20); // inner if within taken path
        assert_eq!(w.fetch(), Some((15, inner)));
        w.jump(20);
        assert_eq!(w.fetch(), Some((11, outer & !inner)));
        w.jump(20);
        assert_eq!(w.fetch(), Some((20, outer)), "inner reconvergence");
        w.jump(30);
        assert_eq!(w.fetch(), Some((1, !outer)), "outer else path");
        w.jump(30);
        assert_eq!(w.fetch(), Some((30, u32::MAX)), "outer reconvergence");
    }

    #[test]
    fn exit_lanes_and_done() {
        let mut w = warp();
        w.exit_lanes(0xFFFF_FFFE);
        assert_eq!(w.fetch(), Some((0, 1)), "lane 0 still running");
        assert!(w.converged(), "single live lane is converged");
        w.exit_lanes(1);
        assert!(w.is_done());
        assert_eq!(w.fetch(), None);
    }

    #[test]
    fn registers_are_per_lane() {
        let mut w = warp();
        w.set_reg(3, Reg(2), 77);
        assert_eq!(w.reg(3, Reg(2)), 77);
        assert_eq!(w.reg(4, Reg(2)), 0);
        assert_eq!(w.operand(3, Operand::Reg(Reg(2))), 77);
        assert_eq!(w.operand(0, Operand::Imm(5)), 5);
    }
}
