//! Simulator configuration (paper Table V plus detector-timing knobs).

use scord_core::{DetectorConfig, FaultPlan, Geometry, StoreKind};

/// GDDR5 timing parameters in memory-controller cycles (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row-to-row activate delay.
    pub t_rrd: u32,
    /// RAS-to-CAS delay (activate to column access).
    pub t_rcd: u32,
    /// Row-active minimum time.
    pub t_ras: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// Row cycle time (activate to activate, same bank).
    pub t_rc: u32,
    /// CAS latency.
    pub t_cl: u32,
    /// Cycles to transfer one 128-byte burst.
    pub burst: u32,
}

impl DramTiming {
    /// Table V's GDDR5 timings.
    #[must_use]
    pub fn paper_default() -> Self {
        DramTiming {
            t_rrd: 6,
            t_rcd: 12,
            t_ras: 28,
            t_rp: 12,
            t_rc: 40,
            t_cl: 12,
            burst: 4,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::paper_default()
    }
}

/// Which of ScoRD's three timing-overhead sources are modelled.
///
/// Figure 10 of the paper attributes the slowdown to (1) stalling on L1 hits
/// while the race detector's buffers are full (LHD), (2) extra bytes on
/// network packets (NOC), and (3) metadata accesses and writebacks (MD). The
/// paper measures each contribution by turning the others' *timing* off while
/// keeping detection functionally identical — these switches reproduce that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadToggles {
    /// Stall the SM when an L1 hit cannot enqueue its detection packet.
    pub lhd: bool,
    /// Grow request packets by the detection header (warp/block IDs, fence
    /// IDs, lock bloom).
    pub noc: bool,
    /// Charge metadata reads/writebacks to the L2/DRAM.
    pub md: bool,
}

impl OverheadToggles {
    /// All overhead sources modelled (the real ScoRD).
    #[must_use]
    pub fn all() -> Self {
        OverheadToggles {
            lhd: true,
            noc: true,
            md: true,
        }
    }
}

impl Default for OverheadToggles {
    fn default() -> Self {
        OverheadToggles::all()
    }
}

/// Race-detection configuration for a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// No race detection (the normalization baseline of Figures 8/9/11).
    Off,
    /// Detection with a given metadata organisation.
    On {
        /// Metadata store (full granularity or the ScoRD software cache).
        store: StoreKind,
        /// Which overhead sources to model.
        toggles: OverheadToggles,
    },
}

impl DetectionMode {
    /// ScoRD's shipping configuration: cached metadata, all overheads.
    #[must_use]
    pub fn scord() -> Self {
        DetectionMode::On {
            store: StoreKind::Cached { ratio: 16 },
            toggles: OverheadToggles::all(),
        }
    }

    /// The base design without metadata caching.
    #[must_use]
    pub fn base_design() -> Self {
        DetectionMode::On {
            store: StoreKind::Full { granularity: 4 },
            toggles: OverheadToggles::all(),
        }
    }

    /// `true` when detection is enabled.
    #[must_use]
    pub fn is_on(&self) -> bool {
        matches!(self, DetectionMode::On { .. })
    }
}

/// Full GPU configuration.
///
/// [`GpuConfig::paper_default`] matches Table V; the `low_memory` /
/// `high_memory` variants are the sensitivity points of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of SMs.
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Hardware warp slots per SM.
    pub warps_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Scratchpad bytes per SM.
    pub shared_mem_per_sm: u32,
    /// Warp instructions issued per SM per cycle.
    pub issue_width: u32,
    /// L1 data cache size in bytes (16 KB, 4-way, 128 B lines).
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// Total L2 size in bytes (1.5 MB, 8-way, 128 B lines), sliced across
    /// the memory partitions.
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Memory channels (= L2 slices/partitions).
    pub channels: u32,
    /// Banks per DRAM channel.
    pub banks_per_channel: u32,
    /// DRAM row (page) size in bytes.
    pub row_bytes: u32,
    /// GDDR5 timing.
    pub dram: DramTiming,
    /// Flit payload in bytes on the interconnect.
    pub flit_bytes: u32,
    /// Per-SM→partition injection queue capacity (packets).
    pub noc_queue: usize,
    /// Shared-memory access latency.
    pub shared_latency: u32,
    /// Block-scope fence cost in cycles.
    pub fence_block_latency: u32,
    /// Device-scope fence cost in cycles.
    pub fence_device_latency: u32,
    /// Device memory size in bytes (data region; metadata lives above it).
    pub mem_bytes: u64,
    /// Race-detector attachment.
    pub detection: DetectionMode,
    /// Detection-packet queue capacity at the race detector.
    pub detector_queue: usize,
    /// Lane accesses the detector retires per cycle.
    pub detector_throughput: u32,
    /// Extra request-packet bytes carrying detection state (warp/block IDs,
    /// fence IDs, bloom filter) when detection is on.
    pub detection_header_bytes: u32,
    /// Optional fault-injection campaign applied to the detector pipeline
    /// (detector state corruption plus queue-level event faults). Ignored
    /// when detection is off.
    pub fault: Option<FaultPlan>,
    /// Skip ahead over cycles in which no component can make progress
    /// (quiescence skip — see the "Performance engineering" section of
    /// DESIGN.md). Simulation results are byte-identical with or without
    /// it; `false` forces the exhaustive cycle-by-cycle loop for
    /// debugging. Also gated process-wide by
    /// [`crate::set_cycle_skip`].
    pub cycle_skip: bool,
    /// Host threads driving the parallel SM front-end phase (Phase A of
    /// the two-phase tick — see the "Intra-sim parallelism" section of
    /// DESIGN.md). `1` (the default) runs the front end inline on the
    /// simulation thread; higher values fan the per-SM front ends out over
    /// a persistent worker pool, capped at `num_sms`. Results are
    /// byte-identical for every value: both settings run the same deferred
    /// commit pipeline, and Phase B applies every shared-state effect
    /// serially in fixed SM order. Raised process-wide by
    /// [`crate::set_sm_threads`] (e.g. `run-experiments --sm-threads N`).
    pub sm_threads: u32,
    /// Host threads driving the sharded memory-side stage of Phase B (one
    /// shard per L2 partition + DRAM channel — see the "Intra-sim
    /// parallelism" section of DESIGN.md). `1` (the default) ticks the
    /// partitions inline in ascending order; higher values fan the shards
    /// out over the same worker pool as `sm_threads`, capped at
    /// `channels`. Results are byte-identical for every value: each shard
    /// only touches its own partition and buffers externally visible
    /// effects, which a fixed-order merge applies exactly as the serial
    /// drain would. Raised process-wide by [`crate::set_mem_threads`]
    /// (e.g. `run-experiments --mem-threads N`).
    pub mem_threads: u32,
    /// Sampled-SM mode: build only this many detailed SMs and model the
    /// remaining `num_sms − sample_sms` SMs' memory traffic statistically
    /// (ghost packets calibrated from the sampled set — see the
    /// "Paper-scale" section of DESIGN.md and [`crate::SampleReport`]).
    /// `0` (the default) disables sampling; the full machine is simulated
    /// and results honour the byte-identical determinism contract.
    /// Non-zero values are an opt-in *approximation*: the full grid still
    /// executes (functional results are exact), but cycle counts are
    /// extrapolated and every extrapolated number carries an error bound.
    /// Sampled runs are gated out of all paper tables — only the
    /// `paper-scale` harness tier sets this.
    pub sample_sms: u32,
}

impl GpuConfig {
    /// The paper's default configuration (Table V), detection off.
    #[must_use]
    pub fn paper_default() -> Self {
        GpuConfig {
            num_sms: 15,
            warp_size: 32,
            max_threads_per_block: 1024,
            blocks_per_sm: 8,
            warps_per_sm: 32,
            regs_per_sm: 32768,
            shared_mem_per_sm: 48 << 10,
            issue_width: 2,
            l1_bytes: 16 << 10,
            l1_ways: 4,
            l1_latency: 4,
            l2_bytes: 3 << 19, // 1.5 MB
            l2_ways: 8,
            l2_latency: 30,
            line_bytes: 128,
            channels: 12,
            banks_per_channel: 8,
            row_bytes: 2048,
            dram: DramTiming::paper_default(),
            flit_bytes: 16,
            noc_queue: 16,
            shared_latency: 24,
            fence_block_latency: 10,
            fence_device_latency: 40,
            mem_bytes: 64 << 20,
            detection: DetectionMode::Off,
            detector_queue: 64,
            detector_throughput: 12,
            detection_header_bytes: 8,
            fault: None,
            cycle_skip: true,
            sm_threads: 1,
            mem_threads: 1,
            sample_sms: 0,
        }
    }

    /// Figure 11's constrained memory system: half the L2, half the
    /// channels.
    #[must_use]
    pub fn low_memory() -> Self {
        GpuConfig {
            l2_bytes: 3 << 18,
            channels: 6,
            ..Self::paper_default()
        }
    }

    /// Figure 11's generous memory system: double the L2 and channels.
    #[must_use]
    pub fn high_memory() -> Self {
        GpuConfig {
            l2_bytes: 3 << 20,
            channels: 24,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with the given detection mode.
    #[must_use]
    pub fn with_detection(mut self, detection: DetectionMode) -> Self {
        self.detection = detection;
        self
    }

    /// Returns a copy with a fault-injection plan armed (effective only when
    /// detection is on).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Returns a copy with sampled-SM mode set (`0` disables it).
    #[must_use]
    pub fn with_sample_sms(mut self, sample_sms: u32) -> Self {
        self.sample_sms = sample_sms;
        self
    }

    /// Checks the configuration against the machine's hard representation
    /// limits — chiefly the metadata accessor-identity field widths
    /// ([`scord_core::BLOCK_ID_BITS`], [`scord_core::WARP_ID_BITS`]). A
    /// geometry that overflows them would silently alias distinct block or
    /// warp slots onto one metadata identity, corrupting detection.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Config`] describing the first violated limit.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        use crate::SimError::Config;
        let max_block_slots = 1u32 << scord_core::BLOCK_ID_BITS;
        let max_warp_slots = 1u32 << scord_core::WARP_ID_BITS;
        if self.num_sms == 0 || self.blocks_per_sm == 0 || self.warps_per_sm == 0 {
            return Err(Config(
                "num_sms, blocks_per_sm and warps_per_sm must be non-zero".into(),
            ));
        }
        if self.num_sms > 256 {
            return Err(Config(format!(
                "num_sms = {} exceeds the 8-bit SM id carried on packets (max 256)",
                self.num_sms
            )));
        }
        let block_slots = self.num_sms.checked_mul(self.blocks_per_sm);
        if block_slots.is_none_or(|n| n > max_block_slots) {
            return Err(Config(format!(
                "num_sms × blocks_per_sm = {}×{} exceeds the {}-bit metadata BlockID \
                 field (max {max_block_slots} block slots)",
                self.num_sms,
                self.blocks_per_sm,
                scord_core::BLOCK_ID_BITS
            )));
        }
        if self.warps_per_sm > max_warp_slots {
            return Err(Config(format!(
                "warps_per_sm = {} exceeds the {}-bit metadata WarpID field (max \
                 {max_warp_slots} warp slots)",
                self.warps_per_sm,
                scord_core::WARP_ID_BITS
            )));
        }
        if self.warp_size == 0 || self.warp_size > 32 {
            return Err(Config(format!(
                "warp_size = {} must be 1..=32 (32-bit lane masks)",
                self.warp_size
            )));
        }
        if self.channels == 0 {
            return Err(Config("channels must be non-zero".into()));
        }
        if self.sm_threads == 0 {
            return Err(Config(
                "sm_threads must be at least 1 (1 = inline front end)".into(),
            ));
        }
        if self.mem_threads == 0 {
            return Err(Config(
                "mem_threads must be at least 1 (1 = inline memory-side drain)".into(),
            ));
        }
        if self.sample_sms > 0 && self.sample_sms >= self.num_sms {
            return Err(Config(format!(
                "sample_sms = {} must be smaller than num_sms = {} (0 disables sampling)",
                self.sample_sms, self.num_sms
            )));
        }
        Ok(())
    }

    /// The detector geometry implied by this configuration.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        Geometry {
            num_sms: self.num_sms,
            blocks_per_sm: self.blocks_per_sm,
            warps_per_sm: self.warps_per_sm,
        }
    }

    /// Builds the [`DetectorConfig`] for the active detection mode, or
    /// `None` when detection is off.
    #[must_use]
    pub fn detector_config(&self) -> Option<DetectorConfig> {
        match self.detection {
            DetectionMode::Off => None,
            DetectionMode::On { store, .. } => Some(DetectorConfig {
                geometry: self.geometry(),
                store,
                mem_bytes: self.mem_bytes,
                metadata_base: self.mem_bytes,
                lock_table_entries: 4,
                max_race_records: 4096,
                fault: self.fault,
            }),
        }
    }

    /// The active overhead toggles (all off when detection is off).
    #[must_use]
    pub fn toggles(&self) -> OverheadToggles {
        match self.detection {
            DetectionMode::Off => OverheadToggles {
                lhd: false,
                noc: false,
                md: false,
            },
            DetectionMode::On { toggles, .. } => toggles,
        }
    }

    /// L2 slice size per memory partition.
    #[must_use]
    pub fn l2_slice_bytes(&self) -> u32 {
        self.l2_bytes / self.channels
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table5() {
        let c = GpuConfig::paper_default();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_threads_per_block, 1024);
        assert_eq!(c.regs_per_sm, 32768);
        assert_eq!(c.blocks_per_sm, 8);
        assert_eq!(c.warps_per_sm, 32);
        assert_eq!(c.l1_bytes, 16 << 10);
        assert_eq!(c.l1_ways, 4);
        assert_eq!(c.l2_bytes, 1536 << 10);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.line_bytes, 128);
        assert_eq!(c.channels, 12);
        let d = c.dram;
        assert_eq!(
            (d.t_rrd, d.t_rcd, d.t_ras, d.t_rp, d.t_rc, d.t_cl),
            (6, 12, 28, 12, 40, 12)
        );
    }

    #[test]
    fn sensitivity_variants_scale_memory() {
        let lo = GpuConfig::low_memory();
        let hi = GpuConfig::high_memory();
        let def = GpuConfig::paper_default();
        assert_eq!(lo.l2_bytes * 2, def.l2_bytes);
        assert_eq!(hi.l2_bytes, def.l2_bytes * 2);
        assert_eq!(lo.channels * 2, def.channels);
        assert_eq!(hi.channels, def.channels * 2);
    }

    #[test]
    fn detector_config_follows_mode() {
        let off = GpuConfig::paper_default();
        assert!(off.detector_config().is_none());
        assert!(!off.detection.is_on());
        let on = off.with_detection(DetectionMode::scord());
        let dc = on.detector_config().unwrap();
        assert_eq!(dc.store, StoreKind::Cached { ratio: 16 });
        assert_eq!(dc.metadata_base, on.mem_bytes);
        assert!(on.detection.is_on());
    }

    #[test]
    fn toggles_default_all_on_when_detecting() {
        let on = GpuConfig::paper_default().with_detection(DetectionMode::base_design());
        let t = on.toggles();
        assert!(t.lhd && t.noc && t.md);
        let off = GpuConfig::paper_default().toggles();
        assert!(!off.lhd && !off.noc && !off.md);
    }

    #[test]
    fn sample_sms_must_stay_below_num_sms() {
        let c = GpuConfig::paper_default();
        assert_eq!(c.sample_sms, 0, "sampling is opt-in");
        assert!(c.validate().is_ok());
        assert!(c.with_sample_sms(5).validate().is_ok());
        assert!(c.with_sample_sms(c.num_sms - 1).validate().is_ok());
        assert!(c.with_sample_sms(c.num_sms).validate().is_err());
        assert!(c.with_sample_sms(c.num_sms + 1).validate().is_err());
    }

    #[test]
    fn l2_slices_divide_evenly() {
        let c = GpuConfig::paper_default();
        assert_eq!(c.l2_slice_bytes() * c.channels, c.l2_bytes);
        assert_eq!(c.l2_slice_bytes(), 128 << 10);
    }
}
