//! Functional device memory and buffer allocation.
//!
//! The simulator keeps function and timing separate: this module is the
//! single coherent backing store every access reads and writes, while the
//! cache/NoC/DRAM models account for time. (See DESIGN.md: ScoRD's detection
//! is metadata-driven and never depends on a stale value actually being
//! observed, so coherent functional memory preserves all results.)
//!
//! Addresses are 64-bit throughout. Kernel-visible *pointers* are 32-bit
//! (the ISA has 32-bit registers), but the memory itself never truncates: a
//! computed address beyond the device allocation is a hard error, not a
//! silent wrap onto a live buffer.

use std::fmt;

use crate::SimError;

/// A handle to an allocated device buffer of 32-bit words.
///
/// ```
/// use scord_sim::DeviceMemory;
/// let mut mem = DeviceMemory::new(1 << 20);
/// let buf = mem.alloc_words(16);
/// mem.write_word(buf.word_addr(0), 42);
/// assert_eq!(mem.read_word(buf.word_addr(0)), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceBuffer {
    addr: u32,
    words: u32,
}

impl DeviceBuffer {
    /// Base byte address of the buffer, as a 32-bit device pointer (kernel
    /// parameters are 32-bit registers).
    #[must_use]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Length in 32-bit words.
    #[must_use]
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Length in bytes.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.words * 4
    }

    /// Byte address of the `i`-th word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn word_addr(&self, i: u32) -> u64 {
        assert!(i < self.words, "index {i} out of {} words", self.words);
        u64::from(self.addr) + u64::from(i) * 4
    }
}

/// The device's global memory: a flat array of 32-bit words plus a bump
/// allocator handing out cache-line-aligned buffers.
pub struct DeviceMemory {
    words: Vec<u32>,
    next_free: u64,
}

impl DeviceMemory {
    /// Creates a zeroed memory of `bytes` (rounded up to a word).
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        let words = usize::try_from(bytes / 4).expect("device memory fits the host address space");
        DeviceMemory {
            words: vec![0; words],
            next_free: 0,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Allocates a 128-byte-aligned buffer of `n` words.
    ///
    /// # Panics
    ///
    /// Panics if the memory is exhausted, or if the buffer would straddle the
    /// 32-bit device-pointer space kernels can address.
    pub fn alloc_words(&mut self, n: u32) -> DeviceBuffer {
        let addr = (self.next_free + 127) & !127;
        let end = addr + u64::from(n) * 4;
        assert!(
            end <= self.bytes(),
            "device memory exhausted: need {} bytes at {addr}, have {}",
            u64::from(n) * 4,
            self.bytes()
        );
        assert!(
            end <= u64::from(u32::MAX) + 1,
            "buffer at {addr}+{} exceeds the 32-bit device-pointer space",
            u64::from(n) * 4
        );
        self.next_free = end;
        DeviceBuffer {
            addr: u32::try_from(addr).expect("checked against the 32-bit pointer space"),
            words: n,
        }
    }

    /// Reads one word at a byte address (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device allocation; use
    /// [`DeviceMemory::try_read_word`] for a recoverable error.
    #[must_use]
    pub fn read_word(&self, addr: u64) -> u32 {
        self.try_read_word(addr)
            .unwrap_or_else(|e| panic!("{e} (memory is {} bytes)", self.bytes()))
    }

    /// Writes one word at a byte address (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device allocation; use
    /// [`DeviceMemory::try_write_word`] for a recoverable error.
    pub fn write_word(&mut self, addr: u64, value: u32) {
        let bytes = self.bytes();
        self.try_write_word(addr, value)
            .unwrap_or_else(|e| panic!("{e} (memory is {bytes} bytes)"));
    }

    /// Reads one word, returning [`SimError::AddressOutOfRange`] instead of
    /// wrapping or panicking when `addr` lies outside the allocation.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] if `addr + 4` exceeds the memory size.
    pub fn try_read_word(&self, addr: u64) -> Result<u32, SimError> {
        debug_assert_eq!(addr % 4, 0, "unaligned read at 0x{addr:x}");
        self.words
            .get(usize::try_from(addr / 4).map_err(|_| SimError::AddressOutOfRange { addr })?)
            .copied()
            .ok_or(SimError::AddressOutOfRange { addr })
    }

    /// Writes one word, returning [`SimError::AddressOutOfRange`] instead of
    /// wrapping or panicking when `addr` lies outside the allocation.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] if `addr + 4` exceeds the memory size.
    pub fn try_write_word(&mut self, addr: u64, value: u32) -> Result<(), SimError> {
        debug_assert_eq!(addr % 4, 0, "unaligned write at 0x{addr:x}");
        let slot = self
            .words
            .get_mut(usize::try_from(addr / 4).map_err(|_| SimError::AddressOutOfRange { addr })?)
            .ok_or(SimError::AddressOutOfRange { addr })?;
        *slot = value;
        Ok(())
    }

    /// Copies a host slice into a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the buffer.
    pub fn copy_in(&mut self, buf: DeviceBuffer, data: &[u32]) {
        assert!(data.len() <= buf.words as usize, "copy_in overflows buffer");
        let base = (buf.addr / 4) as usize;
        self.words[base..base + data.len()].copy_from_slice(data);
    }

    /// Copies a buffer out to the host.
    #[must_use]
    pub fn copy_out(&self, buf: DeviceBuffer) -> Vec<u32> {
        let base = (buf.addr / 4) as usize;
        self.words[base..base + buf.words as usize].to_vec()
    }

    /// Fills a buffer with a value (`cudaMemset`-style, word granularity).
    pub fn fill(&mut self, buf: DeviceBuffer, value: u32) {
        let base = (buf.addr / 4) as usize;
        self.words[base..base + buf.words as usize].fill(value);
    }

    /// Bytes currently allocated (high-water mark).
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.next_free
    }
}

impl fmt::Debug for DeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceMemory")
            .field("bytes", &self.bytes())
            .field("allocated", &self.next_free)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = DeviceMemory::new(4096);
        let a = m.alloc_words(5);
        let b = m.alloc_words(3);
        assert_eq!(a.addr() % 128, 0);
        assert_eq!(b.addr() % 128, 0);
        assert!(b.addr() >= a.addr() + a.bytes());
    }

    #[test]
    fn copy_roundtrip() {
        let mut m = DeviceMemory::new(4096);
        let buf = m.alloc_words(4);
        m.copy_in(buf, &[1, 2, 3, 4]);
        assert_eq!(m.copy_out(buf), vec![1, 2, 3, 4]);
        assert_eq!(m.read_word(buf.word_addr(2)), 3);
    }

    #[test]
    fn fill_sets_every_word() {
        let mut m = DeviceMemory::new(4096);
        let buf = m.alloc_words(8);
        m.fill(buf, 7);
        assert!(m.copy_out(buf).iter().all(|&w| w == 7));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut m = DeviceMemory::new(256);
        let _ = m.alloc_words(100);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn word_addr_bounds_checked() {
        let mut m = DeviceMemory::new(4096);
        let buf = m.alloc_words(2);
        let _ = buf.word_addr(2);
    }

    /// Regression: a 64-bit address beyond 4 GiB used to be truncated with
    /// `as u32` on the access path, silently wrapping onto a live
    /// allocation. It must now be a typed out-of-range error.
    #[test]
    fn high_addresses_error_instead_of_wrapping() {
        let mut m = DeviceMemory::new(1 << 20);
        let buf = m.alloc_words(4);
        m.write_word(buf.word_addr(0), 0xDEAD);
        let wrapping = (1u64 << 32) + buf.word_addr(0);
        assert_eq!(
            m.try_read_word(wrapping),
            Err(SimError::AddressOutOfRange { addr: wrapping }),
            "a high address aliasing a live buffer modulo 2^32 must not read it"
        );
        assert_eq!(
            m.try_write_word(wrapping, 1),
            Err(SimError::AddressOutOfRange { addr: wrapping })
        );
        assert_eq!(m.read_word(buf.word_addr(0)), 0xDEAD, "buffer untouched");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_word_panics_out_of_range() {
        let m = DeviceMemory::new(4096);
        let _ = m.read_word(1 << 40);
    }
}
