//! Sampled-SM mode (`GpuConfig::sample_sms`) end-to-end: functional
//! exactness, determinism across host thread counts, and extrapolation
//! accuracy against a full-detail run of the same kernel.

use scord_isa::KernelBuilder;
use scord_sim::{DetectionMode, Gpu, GpuConfig};

/// A streaming kernel with real memory traffic: `out[i] = in[i] * 3`.
fn stream_kernel() -> scord_isa::Program {
    let mut k = KernelBuilder::new("stream", 2);
    let src = k.ld_param(0);
    let dst = k.ld_param(1);
    let g = k.global_tid();
    let a_in = k.index_addr(src, g, 4);
    let a_out = k.index_addr(dst, g, 4);
    let v = k.ld_global(a_in, 0);
    let v3 = k.mul(v, 3u32);
    k.st_global(a_out, 0, v3);
    k.finish().unwrap()
}

/// Runs `stream_kernel` on `blocks × 128` threads and returns
/// `(gpu, cycles)` after checking the functional output is exact.
fn run_stream(cfg: GpuConfig, blocks: u32) -> (Gpu, u64) {
    let n = blocks * 128;
    let prog = stream_kernel();
    let mut gpu = Gpu::new(cfg);
    let src = gpu.mem_mut().alloc_words(n);
    let dst = gpu.mem_mut().alloc_words(n);
    for i in 0..n {
        gpu.mem_mut().write_word(src.word_addr(i), i);
    }
    let stats = gpu
        .launch(&prog, blocks, 128, &[src.addr(), dst.addr()])
        .unwrap();
    let out = gpu.mem().copy_out(dst);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, (i as u32).wrapping_mul(3), "word {i}");
    }
    (gpu, stats.cycles)
}

#[test]
fn full_detail_runs_report_no_sample() {
    let (gpu, _) = run_stream(GpuConfig::paper_default(), 8);
    assert!(gpu.sample_report().is_none(), "sampling is strictly opt-in");
}

#[test]
fn sampled_run_is_functionally_exact_with_a_report() {
    let cfg = GpuConfig::paper_default().with_sample_sms(5);
    let (gpu, cycles) = run_stream(cfg, 240);
    let r = gpu.sample_report().expect("sampled run must report");
    assert_eq!((r.detailed_sms, r.total_sms), (5, 15));
    assert_eq!(r.measured_cycles, cycles);
    assert!(
        r.extrapolated_cycles < r.measured_cycles,
        "K of N SMs take longer than the full machine, so the estimate \
         shrinks: {} !< {}",
        r.extrapolated_cycles,
        r.measured_cycles
    );
    assert!(r.error_bound_pct >= 2.0, "the model floor always applies");
    assert!(r.real_packets > 0, "a streaming kernel routes packets");
    assert!(
        r.ghost_packets >= r.real_packets,
        "10 un-simulated SMs owe 2 ghosts per real packet"
    );
}

#[test]
fn sampled_runs_are_deterministic_across_thread_counts() {
    // The ghost model runs in the serial NoC step with a fixed-seed RNG,
    // so the byte-identical contract must hold for sampled runs too.
    let base = GpuConfig::paper_default().with_sample_sms(5);
    let serial = run_stream(base, 120);
    let threaded = run_stream(
        GpuConfig {
            sm_threads: 4,
            mem_threads: 4,
            ..base
        },
        120,
    );
    assert_eq!(serial.1, threaded.1, "cycles identical at any thread count");
    let (a, b) = (
        serial.0.sample_report().unwrap(),
        threaded.0.sample_report().unwrap(),
    );
    assert_eq!(a, b, "whole report identical at any thread count");
    // And back-to-back identical configs reproduce exactly.
    let again = run_stream(base, 120);
    assert_eq!(serial.1, again.1);
    assert_eq!(a, again.0.sample_report().unwrap());
}

#[test]
fn sampled_extrapolation_tracks_the_full_machine() {
    // 240 blocks is a whole number of waves on both 5 and 15 SMs, so the
    // wave-quantization term vanishes and the bound is dominated by the
    // model floor plus any SM imbalance.
    let (_, full) = run_stream(GpuConfig::paper_default(), 240);
    let (gpu, _) = run_stream(GpuConfig::paper_default().with_sample_sms(5), 240);
    let r = gpu.sample_report().unwrap();
    let err = (r.extrapolated_cycles as f64 - full as f64).abs() / full as f64;
    assert!(
        err * 100.0 <= 10.0,
        "extrapolation off by {:.1}% (extrapolated {} vs full {})",
        err * 100.0,
        r.extrapolated_cycles,
        full
    );
    assert!(
        r.error_bound_pct <= 25.0,
        "bound should stay small on a balanced streaming kernel, got {:.1}%",
        r.error_bound_pct
    );
}

#[test]
fn sampling_composes_with_detection() {
    // Races are detected from metadata, not timing, so a sampled run
    // must detect exactly what a full run does on the same grid.
    let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
    let (full_gpu, _) = run_stream(cfg, 40);
    let (samp_gpu, _) = run_stream(cfg.with_sample_sms(5), 40);
    assert_eq!(
        full_gpu.races().unwrap().unique_count(),
        samp_gpu.races().unwrap().unique_count(),
        "race-free kernel stays race-free under sampling"
    );
    assert!(
        samp_gpu.detector_store_usage().is_some(),
        "store accounting is available on sampled runs too"
    );
}

#[test]
fn sample_sms_must_be_below_num_sms() {
    let cfg = GpuConfig::paper_default().with_sample_sms(15);
    assert!(Gpu::try_new(cfg).is_err(), "K = N is rejected, not silent");
}
