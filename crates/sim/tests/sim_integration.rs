//! End-to-end simulator tests: real kernels built with `KernelBuilder`,
//! executed on the cycle-level GPU, checked for functional correctness,
//! timing sanity and race-detection results.

use scord_isa::{KernelBuilder, LockConfig, Scope, SpecialReg};
use scord_sim::{DetectionMode, Gpu, GpuConfig, SimError};

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::paper_default())
}

fn gpu_detecting() -> Gpu {
    Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()))
}

// ---------------------------------------------------------------------------
// Functional correctness through the full machine
// ---------------------------------------------------------------------------

#[test]
fn iota_many_blocks_exceeding_residency() {
    // 256 blocks of 128 threads — more than the 120 resident-block slots, so
    // the dispatcher must recycle slots.
    let mut k = KernelBuilder::new("iota", 1);
    let out = k.ld_param(0);
    let g = k.global_tid();
    let addr = k.index_addr(out, g, 4);
    k.st_global(addr, 0, g);
    let prog = k.finish().unwrap();

    let n = 256 * 128;
    let mut gpu = gpu();
    let buf = gpu.mem_mut().alloc_words(n);
    let stats = gpu.launch(&prog, 256, 128, &[buf.addr()]).unwrap();
    let out = gpu.mem().copy_out(buf);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as u32);
    }
    assert!(stats.cycles > 100);
    assert!(stats.dram.data_reads > 0, "stores fetch lines into L2");
}

#[test]
fn divergent_if_else_computes_both_paths() {
    // out[tid] = tid % 2 == 0 ? tid * 3 : tid + 100
    let mut k = KernelBuilder::new("diverge", 1);
    let out = k.ld_param(0);
    let tid = k.special(SpecialReg::Tid);
    let r = k.rem(tid, 2u32);
    let even = k.set_eq(r, 0u32);
    let addr = k.index_addr(out, tid, 4);
    k.if_else(
        even,
        |k| {
            let v = k.mul(tid, 3u32);
            k.st_global(addr, 0, v);
        },
        |k| {
            let v = k.add(tid, 100u32);
            k.st_global(addr, 0, v);
        },
    );
    let prog = k.finish().unwrap();

    let mut gpu = gpu();
    let buf = gpu.mem_mut().alloc_words(64);
    gpu.launch(&prog, 1, 64, &[buf.addr()]).unwrap();
    let out = gpu.mem().copy_out(buf);
    for i in 0..64u32 {
        let expect = if i % 2 == 0 { i * 3 } else { i + 100 };
        assert_eq!(out[i as usize], expect, "thread {i}");
    }
}

#[test]
fn per_lane_loop_trip_counts() {
    // out[tid] = sum(0..tid) — every lane loops a different number of times.
    let mut k = KernelBuilder::new("tri", 1);
    let out = k.ld_param(0);
    let tid = k.special(SpecialReg::Tid);
    let acc = k.mov(0u32);
    k.for_range(0u32, tid, 1u32, |k, i| {
        k.alu_into(acc, scord_isa::AluOp::Add, acc, i);
    });
    let addr = k.index_addr(out, tid, 4);
    k.st_global(addr, 0, acc);
    let prog = k.finish().unwrap();

    let mut gpu = gpu();
    let buf = gpu.mem_mut().alloc_words(96);
    gpu.launch(&prog, 1, 96, &[buf.addr()]).unwrap();
    let out = gpu.mem().copy_out(buf);
    for i in 0..96u32 {
        assert_eq!(out[i as usize], i * (i.wrapping_sub(1)) / 2, "thread {i}");
    }
}

#[test]
fn barrier_separated_neighbor_exchange() {
    // Phase 1: x[tid] = tid. Barrier. Phase 2: y[tid] = x[(tid+1)%n].
    let mut k = KernelBuilder::new("exchange", 2);
    let x = k.ld_param(0);
    let y = k.ld_param(1);
    let tid = k.special(SpecialReg::Tid);
    let n = k.special(SpecialReg::Ntid);
    let xa = k.index_addr(x, tid, 4);
    k.st_global(xa, 0, tid);
    k.bar();
    let t1 = k.add(tid, 1u32);
    let neigh = k.rem(t1, n);
    let xn = k.index_addr(x, neigh, 4);
    let v = k.ld_global(xn, 0);
    let ya = k.index_addr(y, tid, 4);
    k.st_global(ya, 0, v);
    let prog = k.finish().unwrap();

    let mut gpu = gpu_detecting();
    let x = gpu.mem_mut().alloc_words(128);
    let y = gpu.mem_mut().alloc_words(128);
    gpu.launch(&prog, 1, 128, &[x.addr(), y.addr()]).unwrap();
    let out = gpu.mem().copy_out(y);
    for i in 0..128u32 {
        assert_eq!(out[i as usize], (i + 1) % 128);
    }
    assert_eq!(
        gpu.races().unwrap().unique_count(),
        0,
        "barrier-synchronized exchange is race-free: {:?}",
        gpu.races().unwrap().records()
    );
}

#[test]
fn shared_memory_block_reduction() {
    // Each block sums its 64 inputs in shared memory, thread 0 writes result.
    let mut k = KernelBuilder::new("shreduce", 2);
    let inp = k.ld_param(0);
    let out = k.ld_param(1);
    let shoff = k.alloc_shared(64 * 4);
    let tid = k.special(SpecialReg::Tid);
    let ctaid = k.special(SpecialReg::Ctaid);
    let g = k.global_tid();
    let ia = k.index_addr(inp, g, 4);
    let v = k.ld_global(ia, 0);
    let sbase = k.mov(shoff);
    let sa = k.index_addr(sbase, tid, 4);
    k.st_shared(sa, 0, v);
    k.bar();
    let is_zero = k.set_eq(tid, 0u32);
    k.if_then(is_zero, |k| {
        let acc = k.mov(0u32);
        k.for_range(0u32, 64u32, 1u32, |k, i| {
            let a = k.index_addr(sbase, i, 4);
            let x = k.ld_shared(a, 0);
            k.alu_into(acc, scord_isa::AluOp::Add, acc, x);
        });
        let oa = k.index_addr(out, ctaid, 4);
        k.st_global(oa, 0, acc);
    });
    let prog = k.finish().unwrap();

    let mut gpu = gpu();
    let inp = gpu.mem_mut().alloc_words(4 * 64);
    let out = gpu.mem_mut().alloc_words(4);
    let data: Vec<u32> = (0..256).collect();
    gpu.mem_mut().copy_in(inp, &data);
    gpu.launch(&prog, 4, 64, &[inp.addr(), out.addr()]).unwrap();
    let sums = gpu.mem().copy_out(out);
    for b in 0..4u32 {
        let expect: u32 = (b * 64..(b + 1) * 64).sum();
        assert_eq!(sums[b as usize], expect, "block {b}");
    }
}

#[test]
fn device_atomics_sum_across_blocks() {
    let mut k = KernelBuilder::new("atomsum", 1);
    let ctr = k.ld_param(0);
    let g = k.global_tid();
    k.atom_add_noret(ctr, 0, g, Scope::Device);
    let prog = k.finish().unwrap();

    let mut gpu = gpu_detecting();
    let ctr = gpu.mem_mut().alloc_words(1);
    gpu.launch(&prog, 8, 64, &[ctr.addr()]).unwrap();
    let n = 8 * 64u32;
    assert_eq!(gpu.mem().read_word(ctr.word_addr(0)), n * (n - 1) / 2);
    assert_eq!(
        gpu.races().unwrap().unique_count(),
        0,
        "device atomics are race-free: {:?}",
        gpu.races().unwrap().records()
    );
}

// ---------------------------------------------------------------------------
// Scoped-race detection through the full machine
// ---------------------------------------------------------------------------

/// Producer (block 0, thread 0) publishes data, fences, then *releases* an
/// atomic flag; consumer (block 1, thread 0) polls the flag atomically and
/// reads the data. The fence scope is the race-injection knob: `Block` makes
/// the data read a scoped-fence race (Figure 4's bug).
fn message_passing_kernel(fence_scope: Scope) -> scord_isa::Program {
    let mut k = KernelBuilder::new("msg", 3);
    let data = k.ld_param(0);
    let flag = k.ld_param(1);
    let sink = k.ld_param(2);
    let tid = k.special(SpecialReg::Tid);
    let ctaid = k.special(SpecialReg::Ctaid);
    let t0 = k.set_eq(tid, 0u32);
    let b0 = k.set_eq(ctaid, 0u32);
    let producer = k.logical_and(t0, b0);
    let b1 = k.set_eq(ctaid, 1u32);
    let consumer = k.logical_and(t0, b1);
    k.if_then(producer, |k| {
        k.st_global_strong(data, 0, 777u32);
        k.fence(fence_scope);
        k.atom_exch_noret(flag, 0, 1u32, Scope::Device);
    });
    k.if_then(consumer, |k| {
        k.spin_until_eq_atomic(flag, 0, 1u32, Scope::Device);
        let v = k.ld_global_strong(data, 0);
        k.st_global_strong(sink, 0, v);
    });
    k.finish().unwrap()
}

fn run_message_passing(scope: Scope) -> (u32, usize) {
    let mut gpu = gpu_detecting();
    let data = gpu.mem_mut().alloc_words(1);
    let flag = gpu.mem_mut().alloc_words(1);
    let sink = gpu.mem_mut().alloc_words(1);
    gpu.launch(
        &message_passing_kernel(scope),
        2,
        32,
        &[data.addr(), flag.addr(), sink.addr()],
    )
    .unwrap();
    (
        gpu.mem().read_word(sink.word_addr(0)),
        gpu.races().unwrap().unique_count(),
    )
}

#[test]
fn device_fence_message_passing_is_race_free() {
    let (value, races) = run_message_passing(Scope::Device);
    assert_eq!(value, 777);
    assert_eq!(races, 0);
}

#[test]
fn block_fence_message_passing_is_a_scoped_race() {
    // Figure 4's bug through the whole machine: the fence exists but its
    // scope does not reach the consumer's block.
    let (value, races) = run_message_passing(Scope::Block);
    assert_eq!(value, 777, "function is coherent; only detection differs");
    assert!(races >= 1, "scoped-fence race must be reported");
}

fn locked_increment_kernel(cfg: LockConfig) -> scord_isa::Program {
    let mut k = KernelBuilder::new("lockinc", 2);
    let lock = k.ld_param(0);
    let ctr = k.ld_param(1);
    k.critical_section(lock, 0, cfg, |k| {
        let v = k.ld_global_strong(ctr, 0);
        let v1 = k.add(v, 1u32);
        k.st_global_strong(ctr, 0, v1);
    });
    k.finish().unwrap()
}

#[test]
fn device_scoped_lock_increments_exactly() {
    let mut gpu = gpu_detecting();
    let lock = gpu.mem_mut().alloc_words(1);
    let ctr = gpu.mem_mut().alloc_words(1);
    let prog = locked_increment_kernel(LockConfig::device());
    gpu.launch(&prog, 4, 8, &[lock.addr(), ctr.addr()]).unwrap();
    assert_eq!(
        gpu.mem().read_word(ctr.word_addr(0)),
        32,
        "4 blocks × 8 threads"
    );
    assert_eq!(
        gpu.races().unwrap().unique_count(),
        0,
        "correct device lock: {:?}",
        gpu.races().unwrap().records()
    );
}

#[test]
fn block_scoped_lock_across_blocks_is_detected() {
    let mut gpu = gpu_detecting();
    let lock = gpu.mem_mut().alloc_words(1);
    let ctr = gpu.mem_mut().alloc_words(1);
    let prog = locked_increment_kernel(LockConfig::block());
    gpu.launch(&prog, 4, 8, &[lock.addr(), ctr.addr()]).unwrap();
    let races = gpu.races().unwrap();
    assert!(
        races.unique_count() >= 1,
        "block-scoped lock guarding cross-block data must race"
    );
}

// ---------------------------------------------------------------------------
// Timing sanity
// ---------------------------------------------------------------------------

/// A streaming kernel with re-use so L1 and detection interplay shows up.
fn streaming_kernel() -> scord_isa::Program {
    let mut k = KernelBuilder::new("stream", 2);
    let a = k.ld_param(0);
    let b = k.ld_param(1);
    let g = k.global_tid();
    let acc = k.mov(0u32);
    // Each thread reads its word 8 times (L1 hits after the first).
    k.for_range(0u32, 8u32, 1u32, |k, _| {
        let aa = k.index_addr(a, g, 4);
        let v = k.ld_global(aa, 0);
        k.alu_into(acc, scord_isa::AluOp::Add, acc, v);
    });
    let ba = k.index_addr(b, g, 4);
    k.st_global(ba, 0, acc);
    k.finish().unwrap()
}

fn run_streaming(mode: DetectionMode) -> scord_sim::SimStats {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
    let n = 64 * 128;
    let a = gpu.mem_mut().alloc_words(n);
    let b = gpu.mem_mut().alloc_words(n);
    let data: Vec<u32> = (0..n).collect();
    gpu.mem_mut().copy_in(a, &data);
    let stats = gpu.launch(&streaming_kernel(), 64, 128, &[a.addr(), b.addr()]);
    let stats = stats.unwrap();
    let out = gpu.mem().copy_out(b);
    for i in 0..n {
        assert_eq!(out[i as usize], i * 8);
    }
    stats
}

#[test]
fn detection_adds_overhead_and_metadata_traffic() {
    let off = run_streaming(DetectionMode::Off);
    let scord = run_streaming(DetectionMode::scord());
    let base = run_streaming(DetectionMode::base_design());

    assert!(off.l1_hits > 0, "re-reads hit in L1");
    assert_eq!(off.dram.metadata(), 0);
    assert!(scord.dram.metadata() > 0, "metadata traffic exists");
    assert!(
        scord.cycles >= off.cycles,
        "detection cannot speed execution up: {} < {}",
        scord.cycles,
        off.cycles
    );
    assert!(
        base.dram.metadata() >= scord.dram.metadata(),
        "caching metadata reduces unique metadata traffic: base {} vs scord {}",
        base.dram.metadata(),
        scord.dram.metadata()
    );
    assert_eq!(off.unique_races, 0);
    assert_eq!(scord.unique_races, 0, "streaming kernel is race-free");
}

#[test]
fn timeout_watchdog_fires_on_infinite_spin() {
    let mut k = KernelBuilder::new("hang", 1);
    let flag = k.ld_param(0);
    k.spin_until_eq(flag, 0, 1u32); // nobody ever sets it
    let prog = k.finish().unwrap();
    let mut gpu = gpu();
    gpu.set_max_cycles(50_000);
    let flag = gpu.mem_mut().alloc_words(1);
    assert!(matches!(
        gpu.launch(&prog, 1, 32, &[flag.addr()]),
        Err(SimError::Timeout { .. })
    ));
}

#[test]
fn sequential_launches_accumulate_races_but_not_false_ones() {
    // Kernel 1 writes, kernel 2 reads the same buffer: the launch boundary
    // synchronizes, so no cross-kernel race may be reported.
    let mut kw = KernelBuilder::new("w", 1);
    let p = kw.ld_param(0);
    let g = kw.global_tid();
    let a = kw.index_addr(p, g, 4);
    kw.st_global(a, 0, g);
    let kw = kw.finish().unwrap();

    let mut kr = KernelBuilder::new("r", 2);
    let p = kr.ld_param(0);
    let q = kr.ld_param(1);
    let g = kr.global_tid();
    let a = kr.index_addr(p, g, 4);
    let v = kr.ld_global(a, 0);
    let b = kr.index_addr(q, g, 4);
    kr.st_global(b, 0, v);
    let kr = kr.finish().unwrap();

    let mut gpu = gpu_detecting();
    let x = gpu.mem_mut().alloc_words(256);
    let y = gpu.mem_mut().alloc_words(256);
    gpu.launch(&kw, 2, 128, &[x.addr()]).unwrap();
    gpu.launch(&kr, 2, 128, &[x.addr(), y.addr()]).unwrap();
    assert_eq!(
        gpu.races().unwrap().unique_count(),
        0,
        "kernel boundary synchronizes: {:?}",
        gpu.races().unwrap().records()
    );
    assert_eq!(gpu.mem().read_word(y.word_addr(200)), 200);
}
