//! §VI extension: explicit acquire/release operations, synthesized per the
//! PTX 6.0 equivalence (acquire = atomicCAS + fence, release = fence +
//! atomicExch), exercised end-to-end through the simulator and ScoRD.

use scord_isa::{KernelBuilder, Scope, SpecialReg};
use scord_sim::{DetectionMode, Gpu, GpuConfig};

/// Every thread enters an acquire/release-protected critical section and
/// increments a shared counter.
fn acq_rel_kernel(acq_scope: Scope, rel_scope: Scope) -> scord_isa::Program {
    let mut k = KernelBuilder::new("acqrel", 2);
    let lock = k.ld_param(0);
    let ctr = k.ld_param(1);
    // A per-lane try-loop would also work; for the explicit-instruction
    // test every thread performs a full blocking acquire. Use one thread
    // per block to keep lanes from deadlocking each other.
    let tid = k.special(SpecialReg::Tid);
    let leader = k.set_eq(tid, 0u32);
    k.if_then(leader, |k| {
        k.acquire(lock, 0, 0u32, 1u32, acq_scope);
        let v = k.ld_global_strong(ctr, 0);
        let v1 = k.add(v, 1u32);
        k.st_global_strong(ctr, 0, v1);
        k.release(lock, 0, 0u32, rel_scope);
    });
    k.finish().unwrap()
}

fn run(acq: Scope, rel: Scope) -> (u32, usize) {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
    let lock = gpu.mem_mut().alloc_words(1);
    let ctr = gpu.mem_mut().alloc_words(1);
    let prog = acq_rel_kernel(acq, rel);
    gpu.launch(&prog, 6, 32, &[lock.addr(), ctr.addr()])
        .unwrap();
    (
        gpu.mem().read_word(ctr.word_addr(0)),
        gpu.races().unwrap().unique_count(),
    )
}

#[test]
fn device_acquire_release_is_exact_and_race_free() {
    let (count, races) = run(Scope::Device, Scope::Device);
    assert_eq!(count, 6, "each block's leader increments once");
    assert_eq!(races, 0);
}

#[test]
fn block_scoped_acquire_across_blocks_is_detected() {
    let (count, races) = run(Scope::Block, Scope::Device);
    assert_eq!(count, 6, "function stays coherent");
    assert!(races >= 1, "insufficient acquire scope must be reported");
}

#[test]
fn block_scoped_release_across_blocks_is_detected() {
    let (_, races) = run(Scope::Device, Scope::Block);
    assert!(
        races >= 1,
        "a block-scoped release leaves the next holder unsynchronized"
    );
}

#[test]
fn acquire_emits_the_cas_fence_pattern() {
    use scord_isa::{AtomOp, Instr};
    let prog = acq_rel_kernel(Scope::Device, Scope::Device);
    let cas = prog.count_matching(|i| {
        matches!(
            i,
            Instr::Atom {
                op: AtomOp::Cas,
                ..
            }
        )
    });
    let exch = prog.count_matching(|i| {
        matches!(
            i,
            Instr::Atom {
                op: AtomOp::Exch,
                ..
            }
        )
    });
    let fences = prog.count_matching(|i| matches!(i, Instr::Fence { .. }));
    assert_eq!(cas, 1);
    assert_eq!(exch, 1);
    assert_eq!(fences, 2, "acquire-fence and release-fence");
}
