//! Randomized-property tests for the simulator's building blocks and a
//! differential test of the ALU datapath against a host-side evaluator.
//!
//! Driven by `scord_core::SplitMix64` for determinism with no external
//! property-testing crate: every run explores exactly the same inputs.

use scord_core::SplitMix64;
use scord_isa::{AluOp, KernelBuilder, Operand};
use scord_sim::{Cache, DeviceMemory, DramChannel, DramRequest, DramTiming, Gpu, GpuConfig};

const ALU_OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::MulHi,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Min,
    AluOp::Max,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
];

fn for_each_case(cases: u64, test_seed: u64, body: impl Fn(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(test_seed ^ case.wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

/// A line is resident right after being accessed, and gone right after being
/// invalidated, for arbitrary addresses.
#[test]
fn cache_access_then_probe() {
    for_each_case(64, 0x3001, |rng| {
        let n = 1 + rng.below(49);
        let mut c = Cache::new(16 << 10, 4, 128);
        for _ in 0..n {
            let a = rng.next_u64() & 0x3FFF_FFFF;
            let _ = c.access(a, false, false);
            assert!(c.probe(a), "just-accessed line must be resident");
            c.invalidate(a);
            assert!(!c.probe(a), "invalidated line must be gone");
        }
    });
}

/// The cache never holds more distinct lines than its capacity.
#[test]
fn cache_respects_capacity() {
    for_each_case(32, 0x3002, |rng| {
        let n = 1 + rng.below(199);
        let bytes = 1024u32;
        let line = 128u32;
        let mut c = Cache::new(bytes, 2, line);
        for _ in 0..n {
            let _ = c.access(rng.below(1 << 20), false, false);
        }
        let resident = (0..(1u64 << 20) / u64::from(line))
            .filter(|i| c.probe(i * u64::from(line)))
            .count();
        assert!(resident <= (bytes / line) as usize);
    });
}

/// DRAM service times stay within the GDDR5 timing envelope and the channel
/// never runs backwards.
#[test]
fn dram_service_bounds() {
    for_each_case(64, 0x3003, |rng| {
        let n = 1 + rng.below(59);
        let t = DramTiming::paper_default();
        let mut ch = DramChannel::new(t, 8, 2048);
        for _ in 0..n {
            ch.push(DramRequest {
                line_addr: rng.below(1 << 24) & !127,
                write: false,
                metadata: false,
                ghost: false,
            });
        }
        let mut now = 0u64;
        let min = u64::from(t.t_cl + t.burst);
        let max = u64::from(t.t_rp + t.t_rcd + t.t_cl + t.burst);
        while let Some((_, done)) = ch.tick(now) {
            assert!(done > now);
            assert!(
                done - now >= min && done - now <= max,
                "service time {} outside [{min}, {max}]",
                done - now
            );
            now = done;
        }
        assert!(ch.idle(now));
    });
}

/// Device-memory copies round-trip for arbitrary contents.
#[test]
fn device_memory_roundtrip() {
    for_each_case(64, 0x3004, |rng| {
        let n = 1 + rng.below(255) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut m = DeviceMemory::new(1 << 20);
        let buf = m.alloc_words(data.len() as u32);
        m.copy_in(buf, &data);
        assert_eq!(m.copy_out(buf), data);
    });
}

/// Differential test: a random straight-line ALU program produces the same
/// per-thread results on the simulated GPU as a direct host-side evaluation
/// of the same instruction sequence.
#[test]
fn alu_datapath_matches_host_evaluation() {
    for_each_case(24, 0x3005, |rng| {
        let n = 1 + rng.below(23) as usize;
        let ops: Vec<(usize, u32, bool)> = (0..n)
            .map(|_| (rng.below(14) as usize, rng.next_u32(), rng.next_bool()))
            .collect();
        // Kernel: r = tid; for each (op, imm, swap): r = op(r, imm) or
        // op(imm, r); out[tid] = r.
        let mut k = KernelBuilder::new("alusoup", 1);
        let out = k.ld_param(0);
        let tid = k.special(scord_isa::SpecialReg::Tid);
        let acc = k.mov(tid);
        for (op_i, imm, swap) in &ops {
            let op = ALU_OPS[*op_i];
            if *swap {
                k.alu_into(acc, op, Operand::Imm(*imm), Operand::Reg(acc));
            } else {
                k.alu_into(acc, op, Operand::Reg(acc), Operand::Imm(*imm));
            }
        }
        let addr = k.index_addr(out, tid, 4);
        k.st_global(addr, 0, acc);
        let prog = k.finish().expect("valid");

        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let buf = gpu.mem_mut().alloc_words(64);
        gpu.launch(&prog, 1, 64, &[buf.addr()]).expect("launch");
        let got = gpu.mem().copy_out(buf);

        for t in 0u32..64 {
            let mut r = t;
            for (op_i, imm, swap) in &ops {
                let op = ALU_OPS[*op_i];
                r = if *swap {
                    op.eval(*imm, r)
                } else {
                    op.eval(r, *imm)
                };
            }
            assert_eq!(got[t as usize], r, "thread {t}");
        }
    });
}

/// Divergence soup: threads take data-dependent branches; every thread must
/// still produce the value the scalar semantics dictate.
#[test]
fn divergence_matches_scalar_semantics() {
    for_each_case(24, 0x3006, |rng| {
        let n = 1 + rng.below(5) as usize;
        let thresholds: Vec<u32> = (0..n).map(|_| rng.below(64) as u32).collect();
        let mut k = KernelBuilder::new("divsoup", 1);
        let out = k.ld_param(0);
        let tid = k.special(scord_isa::SpecialReg::Tid);
        let acc = k.mov(0u32);
        for (i, th) in thresholds.iter().enumerate() {
            let below = k.set_lt(tid, *th);
            let weight = (i as u32 + 1) * 10;
            k.if_else(
                below,
                |k| k.alu_into(acc, AluOp::Add, acc, weight),
                |k| k.alu_into(acc, AluOp::Add, acc, 1u32),
            );
        }
        let addr = k.index_addr(out, tid, 4);
        k.st_global(addr, 0, acc);
        let prog = k.finish().expect("valid");

        let mut gpu = Gpu::new(GpuConfig::paper_default());
        let buf = gpu.mem_mut().alloc_words(64);
        gpu.launch(&prog, 1, 64, &[buf.addr()]).expect("launch");
        let got = gpu.mem().copy_out(buf);
        for t in 0u32..64 {
            let mut expect = 0u32;
            for (i, th) in thresholds.iter().enumerate() {
                expect += if t < *th { (i as u32 + 1) * 10 } else { 1 };
            }
            assert_eq!(got[t as usize], expect, "thread {t}");
        }
    });
}
