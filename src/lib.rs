//! # scord
//!
//! A comprehensive reproduction of **ScoRD: A Scoped Race Detector for
//! GPUs** (Kamath, George & Basu, ISCA 2020) in pure Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`scord-core`) — the ScoRD detector: scope-aware
//!   happens-before + lockset detection over per-location metadata;
//! * [`sim`] (`scord-sim`) — the cycle-level GPU simulator the detector is
//!   evaluated in (the GPGPU-Sim substitute);
//! * [`isa`] (`scord-isa`) — the PTX-like kernel ISA and builder;
//! * [`suite`] (`scor-suite`) — the ScoR benchmark suite: 7 applications and
//!   32 microbenchmarks with configurable scoped races;
//! * [`harness`] (`scord-harness`) — experiment runners regenerating every
//!   table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use scord::prelude::*;
//!
//! // Build a kernel where two blocks communicate through a block-scoped
//! // fence — insufficient scope, a "scoped race".
//! let mut k = KernelBuilder::new("racey", 2);
//! let data = k.ld_param(0);
//! let flag = k.ld_param(1);
//! let producer = {
//!     let tid = k.special(SpecialReg::Tid);
//!     let cta = k.special(SpecialReg::Ctaid);
//!     let t0 = k.set_eq(tid, 0u32);
//!     let b0 = k.set_eq(cta, 0u32);
//!     k.logical_and(t0, b0)
//! };
//! k.if_then(producer, |k| {
//!     k.st_global_strong(data, 0, 42u32);
//!     k.fence(Scope::Block); // BUG: consumer is in another block
//!     k.atom_exch_noret(flag, 0, 1u32, Scope::Device);
//! });
//! let consumer = {
//!     let tid = k.special(SpecialReg::Tid);
//!     let cta = k.special(SpecialReg::Ctaid);
//!     let t0 = k.set_eq(tid, 0u32);
//!     let b1 = k.set_eq(cta, 1u32);
//!     k.logical_and(t0, b1)
//! };
//! k.if_then(consumer, |k| {
//!     k.spin_until_eq_atomic(flag, 0, 1u32, Scope::Device);
//!     let _ = k.ld_global_strong(data, 0);
//! });
//! let program = k.finish()?;
//!
//! // Run it on the simulated GPU with ScoRD attached.
//! let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
//! let data = gpu.mem_mut().alloc_words(1);
//! let flag = gpu.mem_mut().alloc_words(1);
//! gpu.launch(&program, 2, 32, &[data.addr(), flag.addr()])?;
//!
//! assert_eq!(gpu.races().unwrap().unique_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use scor_suite as suite;
pub use scord_core as core;
pub use scord_harness as harness;
pub use scord_isa as isa;
pub use scord_sim as sim;

/// The most common imports for writing and racing kernels.
pub mod prelude {
    pub use scord_core::{
        AccessKind, Accessor, Detector, DetectorConfig, DetectorKind, MemAccess, RaceKind,
        ScordDetector,
    };
    pub use scord_isa::{AluOp, AtomOp, KernelBuilder, LockConfig, Scope, SpecialReg};
    pub use scord_sim::{DetectionMode, Gpu, GpuConfig, OverheadToggles, SimStats};
}
