//! Workspace-level integration tests: the whole pipeline from kernel
//! construction through the cycle-level simulator to race reports.

use scord::core::{build_detector, DetectorKind, RaceKind};
use scord::prelude::*;
use scord::suite::micro::all_micros;
use scord::suite::Benchmark;

fn scord_gpu() -> Gpu {
    Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()))
}

#[test]
fn every_microbenchmark_behaves_as_labelled_under_scord() {
    for m in all_micros() {
        let mut gpu = scord_gpu();
        m.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let races = gpu.races().unwrap().unique_count();
        if m.racey {
            assert!(races > 0, "{} must be detected", m.name);
        } else {
            assert_eq!(
                races,
                0,
                "{} must not produce false positives: {:?}",
                m.name,
                gpu.races().unwrap().records()
            );
        }
    }
}

#[test]
fn every_microbenchmark_behaves_as_labelled_under_base_design() {
    for m in all_micros() {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        m.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let races = gpu.races().unwrap().unique_count();
        assert_eq!(races > 0, m.racey, "{}", m.name);
    }
}

#[test]
fn scope_blind_detectors_miss_scoped_atomic_races() {
    // The signature capability gap of Table VIII, end-to-end.
    let micro = all_micros()
        .into_iter()
        .find(|m| m.name == "atom-racey-cta-cta-diff-block")
        .expect("microbenchmark exists");

    let catches = |kind: DetectorKind| {
        let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
        let mut gpu = Gpu::with_detector_factory(cfg, |dc| Box::new(build_detector(kind, dc)));
        micro.run(&mut gpu).unwrap();
        gpu.races().unwrap().unique_count() > 0
    };
    assert!(catches(DetectorKind::Scord));
    assert!(!catches(DetectorKind::BarracudaLike));
    assert!(!catches(DetectorKind::HaccrgLike));
}

#[test]
fn correct_apps_validate_with_zero_reports() {
    for app in scord_harness::apps(true) {
        let mut gpu = scord_gpu();
        let run = app
            .run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert_eq!(run.output_valid, Some(true), "{} output", app.name());
        assert_eq!(
            gpu.races().unwrap().unique_count(),
            0,
            "{} false positives: {:?}",
            app.name(),
            gpu.races().unwrap().records()
        );
    }
}

#[test]
fn racey_apps_are_detected_at_quick_sizes() {
    for app in scord_harness::apps_racey(true) {
        let mut gpu =
            Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::base_design()));
        app.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert!(
            gpu.races().unwrap().unique_count() > 0,
            "{} must report at least one race",
            app.name()
        );
    }
}

#[test]
fn report_kinds_cover_the_taxonomy() {
    // Across the racey microbenchmarks, ScoRD should exercise most of its
    // race-kind taxonomy (Table IV's conditions).
    let mut seen = std::collections::HashSet::new();
    for m in all_micros().into_iter().filter(|m| m.racey) {
        let mut gpu = scord_gpu();
        m.run(&mut gpu).unwrap();
        for (_, kind) in gpu.races().unwrap().unique_races() {
            seen.insert(kind);
        }
    }
    for kind in [
        RaceKind::MissingDeviceFence,
        RaceKind::ScopedAtomic,
        RaceKind::NotStrong,
        RaceKind::MissingLockStore,
    ] {
        assert!(seen.contains(&kind), "taxonomy gap: {kind} never reported");
    }
}

#[test]
fn detection_modes_agree_on_functional_results() {
    // Function and timing are decoupled: whatever the detector build, the
    // computed outputs are identical.
    use scord::suite::apps::Reduction;
    let app = Reduction {
        elements: 4096,
        blocks: 8,
        threads_per_block: 64,
        ..Reduction::default()
    };
    let mut results = Vec::new();
    for mode in [
        DetectionMode::Off,
        DetectionMode::base_design(),
        DetectionMode::scord(),
    ] {
        let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(mode));
        let run = app.run(&mut gpu).unwrap();
        assert_eq!(run.output_valid, Some(true));
        results.push(run.stats.thread_instructions);
    }
    // Thread-instruction counts can differ slightly (spin loops react to
    // timing), but validated output means the sums agree.
}

#[test]
fn facade_prelude_compiles_a_full_flow() {
    let mut k = KernelBuilder::new("axpy", 3);
    let x = k.ld_param(0);
    let y = k.ld_param(1);
    let a = k.ld_param(2);
    let g = k.global_tid();
    let xa = k.index_addr(x, g, 4);
    let v = k.ld_global(xa, 0);
    let av = k.mul(v, a);
    let ya = k.index_addr(y, g, 4);
    let old = k.ld_global(ya, 0);
    let sum = k.add(old, av);
    k.st_global(ya, 0, sum);
    let prog = k.finish().unwrap();

    let mut gpu = scord_gpu();
    let n = 512;
    let x = gpu.mem_mut().alloc_words(n);
    let y = gpu.mem_mut().alloc_words(n);
    let xs: Vec<u32> = (0..n).collect();
    let ys: Vec<u32> = (0..n).map(|i| i * 10).collect();
    gpu.mem_mut().copy_in(x, &xs);
    gpu.mem_mut().copy_in(y, &ys);
    gpu.launch(&prog, 4, 128, &[x.addr(), y.addr(), 3]).unwrap();
    for i in 0..n {
        assert_eq!(gpu.mem().read_word(y.word_addr(i)), i * 10 + 3 * i);
    }
    assert_eq!(gpu.races().unwrap().unique_count(), 0);
}
