//! The paper's headline quantitative claims, asserted at quick scale.
//! EXPERIMENTS.md records the full-size numbers; these tests keep the
//! claims' *shape* under regression control.

use scord::core::{DetectorConfig, ScordDetector, StoreKind};
use scord::prelude::*;

#[test]
fn hardware_state_is_under_3_kilobytes() {
    // §IV-C: barrier IDs + lock tables + fence file ≈ 2.9 KB.
    let det = ScordDetector::new(DetectorConfig::paper_default(64 << 20));
    assert!(det.hardware_state_bits() <= 3 * 1024 * 8);
}

#[test]
fn metadata_overheads_match_abstract() {
    // Abstract: 12.5% metadata overhead for ScoRD, 200% for the naive base.
    assert_eq!(StoreKind::Cached { ratio: 16 }.overhead_fraction(), 0.125);
    assert_eq!(StoreKind::Full { granularity: 4 }.overhead_fraction(), 2.0);
}

#[test]
fn fig8_shape_caching_helps_and_overhead_is_bounded() {
    let rows = scord_harness::fig8::run(true, scord_harness::Jobs::serial());
    // Base design ≥ ScoRD on average (metadata caching helps performance,
    // §V-A) and the mean overhead stays within a plausible band of the
    // paper's 35%.
    let geo = |f: &dyn Fn(&scord_harness::fig8::Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let base = geo(&|r| r.base);
    let scord = geo(&|r| r.scord);
    assert!(
        scord <= base + 0.02,
        "caching should not hurt on average: scord {scord:.3} vs base {base:.3}"
    );
    assert!(
        scord < 2.0,
        "mean ScoRD overhead stays moderate: {scord:.3}"
    );
}

#[test]
fn fig9_shape_metadata_traffic_shrinks_16x_ish() {
    let rows = scord_harness::fig9::run(true, scord_harness::Jobs::serial());
    let base_md: f64 = rows.iter().map(|r| r.base_md).sum();
    let scord_md: f64 = rows.iter().map(|r| r.scord_md).sum();
    assert!(
        scord_md * 4.0 < base_md,
        "cached metadata traffic should be several times smaller: {scord_md:.2} vs {base_md:.2}"
    );
}

#[test]
fn table7_shape_false_positives_grow_with_granularity() {
    let rows = scord_harness::table7::run(true, scord_harness::Jobs::serial());
    let sum =
        |f: &dyn Fn(&scord_harness::table7::Row) -> usize| -> usize { rows.iter().map(f).sum() };
    assert_eq!(sum(&|r| r.g4), 0, "4-byte tracking has no false positives");
    assert_eq!(sum(&|r| r.scord), 0, "ScoRD has no false positives");
    assert!(
        sum(&|r| r.g16) >= sum(&|r| r.g8),
        "coarser granularity cannot reduce false positives"
    );
    assert!(
        sum(&|r| r.g8) + sum(&|r| r.g16) > 0,
        "coarse granularity must introduce some false positives"
    );
}

#[test]
fn table6_shape_base_catches_everything_quick() {
    let rows = scord_harness::table6::run(true, scord_harness::Jobs::serial())
        .expect("quick workloads simulate cleanly");
    let micro = rows
        .iter()
        .find(|r| r.workload == "Microbenchmarks")
        .unwrap();
    assert_eq!(micro.present, 18);
    assert_eq!(micro.base, 18);
    assert_eq!(micro.scord, 18);
    for r in rows.iter().filter(|r| r.workload != "Total") {
        assert!(r.base > 0, "{}", r.workload);
        assert!(
            r.scord <= r.base,
            "{}: caching can only lose races, not invent them",
            r.workload
        );
    }
}

#[test]
fn detection_can_be_turned_off_for_production() {
    // §I: "ScoRD can be turned on only during software testing or
    // debugging" — detection off must add no metadata traffic and report
    // nothing.
    let app = scord_harness::apps(true).remove(1); // RED
    let stats = scord_harness::run_app(
        app.as_ref(),
        DetectionMode::Off,
        scord_harness::MemoryVariant::Default,
    );
    assert_eq!(stats.dram.metadata(), 0);
    assert_eq!(stats.detector_events, 0);
    assert_eq!(stats.unique_races, 0);
}
