//! Quickstart: write a kernel with an insufficiently-scoped fence, run it on
//! the simulated GPU, and let ScoRD report the scoped race.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scord::prelude::*;

fn build_kernel(fence_scope: Scope) -> scord::isa::Program {
    // Producer (block 0) publishes `data` then releases an atomic flag;
    // consumer (block 1) polls the flag and reads `data`. With a
    // block-scoped fence the consumer is outside the fence's scope: the
    // classic scoped race of the paper's Figure 4.
    let mut k = KernelBuilder::new("message-passing", 3);
    let data = k.ld_param(0);
    let flag = k.ld_param(1);
    let out = k.ld_param(2);

    let tid = k.special(SpecialReg::Tid);
    let cta = k.special(SpecialReg::Ctaid);
    let t0 = k.set_eq(tid, 0u32);
    let b0 = k.set_eq(cta, 0u32);
    let producer = k.logical_and(t0, b0);
    k.if_then(producer, |k| {
        k.st_global_strong(data, 0, 2026u32);
        k.fence(fence_scope);
        k.atom_exch_noret(flag, 0, 1u32, Scope::Device);
    });

    let b1 = k.set_eq(cta, 1u32);
    let consumer = k.logical_and(t0, b1);
    k.if_then(consumer, |k| {
        k.spin_until_eq_atomic(flag, 0, 1u32, Scope::Device);
        let v = k.ld_global_strong(data, 0);
        k.st_global_strong(out, 0, v);
    });
    k.finish().expect("kernel is well-formed")
}

fn run(fence_scope: Scope) {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
    let data = gpu.mem_mut().alloc_words(1);
    let flag = gpu.mem_mut().alloc_words(1);
    let out = gpu.mem_mut().alloc_words(1);
    let program = build_kernel(fence_scope);
    let stats = gpu
        .launch(&program, 2, 32, &[data.addr(), flag.addr(), out.addr()])
        .expect("launch succeeds");

    println!("--- fence scope: {fence_scope} ---");
    println!(
        "consumer read {} in {} cycles",
        gpu.mem().read_word(out.word_addr(0)),
        stats.cycles
    );
    let races = gpu.races().expect("detection on");
    if races.is_empty() {
        println!("ScoRD: no races reported\n");
    } else {
        for r in races.records() {
            println!("ScoRD: {r}");
        }
        println!();
    }
}

fn main() {
    println!("ScoRD quickstart: the same kernel with sufficient and insufficient fence scope.\n");
    run(Scope::Device); // correct
    run(Scope::Block); // scoped race
}
