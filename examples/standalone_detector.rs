//! Using `scord-core` *without* the simulator: drive the detector with a
//! hand-written access stream — useful when embedding ScoRD's logic in
//! another tool (a binary instrumenter, a different simulator, a trace
//! replayer).
//!
//! ```text
//! cargo run --release --example standalone_detector
//! ```

use scord::core::{
    AccessKind, Accessor, AtomKind, Detector, DetectorConfig, MemAccess, ScordDetector,
};
use scord::prelude::Scope;

fn main() {
    let mut det = ScordDetector::new(DetectorConfig::paper_default(1 << 20));
    println!(
        "detector hardware state: {} bits (paper budget: <3KB)",
        det.hardware_state_bits()
    );
    println!(
        "metadata footprint for 1 MiB of device memory: {} KiB (12.5%)\n",
        det.metadata_footprint_bytes() >> 10
    );

    let warp_a = Accessor {
        sm: 0,
        block_slot: 0,
        warp_slot: 0,
    };
    let warp_b = Accessor {
        sm: 1,
        block_slot: 8,
        warp_slot: 0,
    };

    // Replay a lock-protected critical section where the second thread's
    // acquire "forgot" the fence — the lock never becomes active in the
    // lock table, so its accesses carry no lockset.
    let lock = 0x100u64;
    let data = 0x200u64;

    // Thread A: correct acquire/release around a store.
    det.on_access(&MemAccess {
        kind: AccessKind::Atomic {
            kind: AtomKind::Cas,
            scope: Scope::Device,
        },
        addr: lock,
        strong: true,
        pc: 10,
        who: warp_a,
    })
    .unwrap();
    det.on_fence(warp_a.sm, warp_a.warp_slot, Scope::Device)
        .unwrap();
    det.on_access(&MemAccess {
        kind: AccessKind::Store,
        addr: data,
        strong: true,
        pc: 11,
        who: warp_a,
    })
    .unwrap();
    det.on_fence(warp_a.sm, warp_a.warp_slot, Scope::Device)
        .unwrap();
    det.on_access(&MemAccess {
        kind: AccessKind::Atomic {
            kind: AtomKind::Exch,
            scope: Scope::Device,
        },
        addr: lock,
        strong: true,
        pc: 12,
        who: warp_a,
    })
    .unwrap();

    // Thread B: CAS without the fence, then touches the data.
    det.on_access(&MemAccess {
        kind: AccessKind::Atomic {
            kind: AtomKind::Cas,
            scope: Scope::Device,
        },
        addr: lock,
        strong: true,
        pc: 20,
        who: warp_b,
    })
    .unwrap();
    // ... missing __threadfence() here ...
    det.on_access(&MemAccess {
        kind: AccessKind::Store,
        addr: data,
        strong: true,
        pc: 21,
        who: warp_b,
    })
    .unwrap();

    println!("replayed 2-thread lock protocol with a missing acquire fence:");
    for r in det.races().records() {
        println!("  {r}");
    }
    assert_eq!(det.races().unique_count(), 1);
    println!("\nThe lockset check flags the store even though the race never manifested.");
}
