//! Table VIII in miniature: run the same scoped-race kernels under ScoRD
//! and under models of the prior detectors (HAccRG-like: no scope
//! awareness; Barracuda/CURD-like: scoped fences but not scoped atomics)
//! and show who catches what.
//!
//! ```text
//! cargo run --release --example detector_shootout
//! ```

use scord::core::{build_detector, DetectorKind};
use scord::prelude::*;
use scord::suite::micro::all_micros;

fn main() {
    println!("Detector shoot-out over the ScoR racey microbenchmarks.\n");
    let micros = all_micros();
    println!(
        "{:44} {:>8} {:>15} {:>12}",
        "microbenchmark", "ScoRD", "Barracuda-like", "HAccRG-like"
    );
    for m in micros.iter().filter(|m| m.racey) {
        let mut cells = Vec::new();
        for kind in DetectorKind::ALL {
            let cfg = GpuConfig::paper_default().with_detection(DetectionMode::scord());
            let mut gpu = Gpu::with_detector_factory(cfg, |dc| Box::new(build_detector(kind, dc)));
            m.run(&mut gpu).expect("micros run to completion");
            let caught = gpu.races().expect("detection on").unique_count() > 0;
            cells.push(if caught { "caught" } else { "MISSED" });
        }
        println!(
            "{:44} {:>8} {:>15} {:>12}",
            m.name, cells[0], cells[1], cells[2]
        );
    }
    println!(
        "\nEvery \"MISSED\" in the right columns is a scoped race invisible to a\n\
         scope-blind detector — the gap ScoRD (the left column) closes."
    );
}
