//! The paper's motivating scenario (Figures 2–3): graph algorithms with
//! work stealing, where a block-scoped `atomicAdd` on the work queue looks
//! safe "because only my block takes from my partition" — until another
//! block steals.
//!
//! Runs Graph Coloring in both configurations and prints ScoRD's findings.
//!
//! ```text
//! cargo run --release --example work_stealing_audit
//! ```

use scord::prelude::*;
use scord::suite::apps::{GraphColoring, GraphColoringRaces};
use scord::suite::Benchmark;

fn audit(name: &str, app: &GraphColoring) {
    let mut gpu = Gpu::new(GpuConfig::paper_default().with_detection(DetectionMode::scord()));
    let run = app.run(&mut gpu).expect("GCOL runs to completion");
    println!("=== {name} ===");
    println!(
        "cycles: {}, validated: {:?}",
        run.stats.cycles, run.output_valid
    );
    let races = gpu.races().expect("detection on");
    println!("unique races: {}", races.unique_count());
    let mut seen = std::collections::HashSet::new();
    for r in races.records() {
        if seen.insert((r.pc, r.kind)) {
            println!("  {r}");
        }
    }
    println!();
}

fn main() {
    println!("Work-stealing audit: Figure 3a (correct) vs Figure 3b (scoped race).\n");

    audit(
        "correct: device-scoped work queue",
        &GraphColoring::default(),
    );

    let buggy = GraphColoring {
        races: GraphColoringRaces {
            // Figure 3b: "only my block consumes my partition" — but a
            // stealer from another block may be racing the same nextHead.
            block_scope_own_head: true,
            ..GraphColoringRaces::default()
        },
        ..GraphColoring::default()
    };
    audit("buggy: atomicAdd_block on own nextHead (Fig. 3b)", &buggy);
}
