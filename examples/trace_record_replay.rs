//! Record the detector event stream of a real (simulated) execution, save
//! it as text, and replay it against other detector configurations — the
//! workflow for comparing metadata organisations on one execution, or for
//! shipping a repro of a race to someone without your simulator.
//!
//! Also demonstrates implementing `scord_core::Detector` downstream: the
//! tee below forwards events to ScoRD while sharing the recorded trace with
//! the host code.
//!
//! ```text
//! cargo run --release --example trace_record_replay
//! ```

use std::sync::{Arc, Mutex};

use scord::core::{
    AccessEffects, Detector, DetectorConfig, DetectorError, MemAccess, RaceLog, RecordingDetector,
    ScordDetector, StoreKind, Trace,
};
use scord::prelude::*;
use scord::suite::apps::Reduction;
use scord::suite::Benchmark;

/// Forwards to a [`RecordingDetector`] while sharing its trace with the
/// code that launched the GPU (the simulator owns the detector).
#[derive(Debug)]
struct SharedTee {
    inner: RecordingDetector<ScordDetector>,
    out: Arc<Mutex<Trace>>,
}

impl Detector for SharedTee {
    fn on_barrier(&mut self, sm: u8, block_slot: u8) -> Result<(), DetectorError> {
        self.inner.on_barrier(sm, block_slot)
    }
    fn on_fence(&mut self, sm: u8, warp_slot: u8, scope: Scope) -> Result<(), DetectorError> {
        self.inner.on_fence(sm, warp_slot, scope)
    }
    fn on_warp_assigned(&mut self, sm: u8, warp_slot: u8) -> Result<(), DetectorError> {
        self.inner.on_warp_assigned(sm, warp_slot)
    }
    fn on_access(&mut self, access: &MemAccess) -> Result<AccessEffects, DetectorError> {
        let effects = self.inner.on_access(access);
        *self.out.lock().expect("trace lock") = self.inner.trace().clone();
        effects
    }
    fn races(&self) -> &RaceLog {
        self.inner.races()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn on_kernel_boundary(&mut self) {
        self.inner.on_kernel_boundary();
    }
}

fn main() {
    // 1. Record: run racey Reduction on the simulator with a recording tee.
    let shared = Arc::new(Mutex::new(Trace::new()));
    let out = Arc::clone(&shared);
    let cfg = GpuConfig::paper_default().with_detection(DetectionMode::base_design());
    let mut gpu = Gpu::with_detector_factory(cfg, move |dc| {
        Box::new(SharedTee {
            inner: RecordingDetector::new(ScordDetector::new(dc)),
            out,
        })
    });
    let app = Reduction {
        elements: 4096,
        blocks: 8,
        threads_per_block: 64,
        races: Reduction::racey().races,
        ..Reduction::default()
    };
    app.run(&mut gpu).expect("RED runs");
    let live_races = gpu.races().unwrap().unique_count();
    let trace = shared.lock().expect("trace lock").clone();
    println!(
        "recorded {} events from racey RED; live detection found {live_races} unique races",
        trace.len()
    );

    // 2. Save as text (first few lines shown).
    let text = trace.to_text();
    for line in text.lines().take(5) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());

    // 3. Replay the very same execution under different metadata stores.
    for (name, store) in [
        (
            "full 4-byte store (200%)",
            StoreKind::Full { granularity: 4 },
        ),
        ("cached store (12.5%)", StoreKind::Cached { ratio: 16 }),
        (
            "coarse 16-byte store (50%)",
            StoreKind::Full { granularity: 16 },
        ),
    ] {
        let mut det = ScordDetector::new(DetectorConfig {
            store,
            ..DetectorConfig::paper_default(64 << 20)
        });
        let reparsed = Trace::from_text(&text).expect("roundtrip");
        reparsed
            .replay(&mut det)
            .expect("replayed events are valid");
        println!(
            "replay under {name:28} -> {} unique races",
            det.races().unique_count()
        );
    }
}
